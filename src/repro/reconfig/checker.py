"""The reconfiguration checker: migrations preserve the data invariants.

:func:`check_reconfig` verifies, over a finished elastic run, that the
online key-range migrations themselves behaved — complementing the
serializability checker (which proves the *data* stayed one-copy
serializable across the moves) with the reconfig-specific invariants:

1. **outcome agreement** — every correct participant (source and
   target replicas) that saw a reconfig through to an outcome reached
   the *same* outcome (completed everywhere or aborted everywhere;
   a source that shed while the target rolled back would strand keys);
2. **handoff fidelity** — each handoff's snapshot equals the one-copy
   replay's source state at the reconfig's serial position, and its
   abort flag equals the replay's authoritative CAS decision (the
   migrated state is exactly the state the source owned at R);
3. **no stale execution** — a replica that fenced a transaction
   (``WrongEpoch``) must not have executed any of the fenced ops: every
   rejection record is checked against the recorded per-op effects;
4. **unique ownership** — at the end of the run every surviving key is
   held by the replicas of exactly one partition, at one value (no key
   is duplicated across groups by a half-applied move, and none is
   left dangling at a shed source).

Unfinished reconfigs (an R whose H never landed because the designated
caster crashed) are *reported*, not flagged: safety holds — the moving
keys are simply unavailable, which the campaign metrics surface as
uncommitted transactions and ``keys_in_flight``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.store.checker import StreamingSerializabilityChecker


class ReconfigViolation(AssertionError):
    """A migration broke a reconfiguration invariant.

    ``context`` carries machine-readable details (kind, reconfig id,
    pid, key) for the adversary explorer's structured records.
    """

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.context: Dict[str, object] = context


def _correct_members(cluster, gid: int) -> List[int]:
    network = cluster.system.network
    return [pid for pid in cluster.system.topology.members(gid)
            if not network.process(pid).crashed]


def check_reconfig(cluster) -> Dict[str, object]:
    """Verify every migration of a finished run; returns a summary.

    The summary maps ``completed`` / ``aborted`` / ``unfinished`` to
    sorted reconfig-id lists and ``keys_in_flight`` to keys stranded by
    unfinished moves — the campaign's reconfig metrics read it.
    """
    checker = StreamingSerializabilityChecker(cluster.system.topology)
    checker.ingest_journals(cluster)
    checker.finalize(cluster)
    replay = checker.reconfig_replay

    # ------------------------------------------------------------ 1 + 2
    ops = {}
    for store in cluster.stores.values():
        ops.update(store.initiated_reconfigs)
    completed: List[str] = []
    aborted: List[str] = []
    unfinished: List[str] = []
    in_flight: Set[str] = set()
    for rid in sorted(ops):
        op = ops[rid]
        outcomes: Dict[int, str] = {}
        for gid in (op.src, op.dst):
            for pid in _correct_members(cluster, gid):
                store = cluster.stores[pid]
                if rid not in store.initiated_reconfigs:
                    continue  # R never reached this replica (it may
                    # have crashed and recovered out of scope)
                if rid in store.completed_reconfigs:
                    outcomes[pid] = "completed"
                elif rid in store.aborted_reconfigs:
                    outcomes[pid] = "aborted"
                else:
                    outcomes[pid] = "unfinished"
        decided = {o for o in outcomes.values() if o != "unfinished"}
        if len(decided) > 1:
            raise ReconfigViolation(
                f"reconfig {rid} ended split-brain: {outcomes} — some "
                f"correct participants completed the move while others "
                f"aborted it",
                kind="outcome_split", reconfig_id=rid,
                outcomes=dict(sorted(outcomes.items())),
            )
        verdict = next(iter(decided), "unfinished")
        if verdict == "completed":
            completed.append(rid)
        elif verdict == "aborted":
            aborted.append(rid)
        else:
            unfinished.append(rid)
            in_flight.update(op.keys)
        expected = replay.get(rid)
        if expected is not None and verdict != "unfinished":
            want = "completed" if expected["proceeded"] else "aborted"
            if verdict != want:
                raise ReconfigViolation(
                    f"reconfig {rid} {verdict} in the run, but the "
                    f"one-copy replay's authoritative CAS says it "
                    f"should have {want}",
                    kind="cas_divergence", reconfig_id=rid,
                    run=verdict, replay=want,
                )
        for store in cluster.stores.values():
            h = store.handoffs.get(rid)
            if h is None or expected is None:
                continue
            if h.aborted == expected["proceeded"]:
                raise ReconfigViolation(
                    f"handoff for {rid} carries aborted={h.aborted}, "
                    f"but the replay's CAS decision is "
                    f"proceeded={expected['proceeded']}",
                    kind="handoff_outcome", reconfig_id=rid,
                )
            if not h.aborted and tuple(h.snapshot) != expected["snapshot"]:
                raise ReconfigViolation(
                    f"handoff for {rid} migrated "
                    f"{dict(h.snapshot)!r}, but the source's one-copy "
                    f"state at R was {dict(expected['snapshot'])!r} — "
                    f"the move lost or invented data",
                    kind="snapshot_divergence", reconfig_id=rid,
                    got=tuple(h.snapshot), want=expected["snapshot"],
                )

    # -------------------------------------------------------------- 3
    for pid in sorted(cluster.stores):
        store = cluster.stores[pid]
        if cluster.system.network.process(pid).crashed:
            continue
        for rejection in store.rejections:
            effects = store.effects_of(rejection["txn_id"])
            if effects is None:
                continue
            txn = next(
                (t for t in store.applied_txns
                 if getattr(t, "txn_id", None) == rejection["txn_id"]),
                None)
            if txn is None:
                continue
            for index, op in enumerate(txn.ops):
                if op[1] not in rejection["keys"]:
                    continue
                if (index in effects.reads
                        or index in effects.cas_applied):
                    raise ReconfigViolation(
                        f"stale execution: replica {pid} fenced "
                        f"{txn.txn_id}'s op on {op[1]!r} (WrongEpoch) "
                        f"yet recorded effects for it — the op ran "
                        f"against a map epoch the replica no longer "
                        f"owned",
                        kind="stale_execution", pid=pid,
                        txn=txn.txn_id, key=op[1], op_index=index,
                    )

    # -------------------------------------------------------------- 4
    holders: Dict[str, Dict[int, Set]] = {}
    for gid in cluster.system.topology.group_ids:
        for pid in _correct_members(cluster, gid):
            for key, value in cluster.stores[pid].state.items():
                holders.setdefault(key, {}).setdefault(
                    gid, set()).add(repr(value))
    for key in sorted(holders):
        by_group = holders[key]
        if len(by_group) > 1:
            raise ReconfigViolation(
                f"key {key!r} is held by replicas of "
                f"{sorted(by_group)} — a migration left it owned by "
                f"more than one partition",
                kind="duplicate_ownership", key=key,
                groups=sorted(by_group),
            )

    keys_moved = sorted({k for rid in completed for k in ops[rid].keys})
    return {
        "completed": completed,
        "aborted": aborted,
        "unfinished": unfinished,
        "keys_in_flight": sorted(in_flight),
        "keys_moved": keys_moved,
    }
