"""Consistent-hash ring ownership with virtual nodes per group.

The elastic partition map needs an ownership function with two
properties the bare ``sha256 % n_groups`` fallback lacks:

* **balance** — with ``vnodes`` points per group the max/min
  keys-per-group ratio concentrates around 1 (std of a group's arc
  share falls as ``1/sqrt(vnodes)``);
* **locality of change** — adding or removing one group remaps only
  the keys on the arcs that group gains or loses (≈ ``1/n`` of the
  keyspace), where the modulo assignment reshuffles almost everything.

The ring is a plain value: positions derive only from group ids and
virtual-node indices via SHA-256, so every replica (and the checker)
reconstructs the identical ring from the group list alone — no state
to replicate, no randomness to seed.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, List, Tuple


def _hash64(token: str) -> int:
    """First 8 bytes of SHA-256, as an unsigned 64-bit ring position."""
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Key → group ownership over a consistent-hash ring."""

    def __init__(self, groups: Iterable[int], vnodes: int = 64) -> None:
        """Build the ring for ``groups`` with ``vnodes`` points each.

        Groups are deduplicated and sorted so two rings over the same
        set are identical objects-by-value regardless of input order.
        """
        self.groups: Tuple[int, ...] = tuple(sorted(set(groups)))
        if not self.groups:
            raise ValueError("HashRing needs at least one group")
        if vnodes < 1:
            raise ValueError(f"HashRing needs vnodes >= 1, got {vnodes!r}")
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = [
            (_hash64(f"group:{gid}:vnode:{v}"), gid)
            for gid in self.groups
            for v in range(vnodes)
        ]
        points.sort()
        self._points = points
        self._positions = [pos for pos, _ in points]

    def owner(self, key: str) -> int:
        """The group owning ``key``: first ring point at or after its
        hash, wrapping past the top of the ring."""
        h = _hash64(f"key:{key}")
        idx = bisect_right(self._positions, h) % len(self._points)
        return self._points[idx][1]

    def with_group(self, gid: int) -> "HashRing":
        """A new ring with ``gid`` added (value semantics)."""
        return HashRing(self.groups + (gid,), vnodes=self.vnodes)

    def without_group(self, gid: int) -> "HashRing":
        """A new ring with ``gid`` removed."""
        return HashRing((g for g in self.groups if g != gid),
                        vnodes=self.vnodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HashRing(groups={self.groups}, "
                f"vnodes={self.vnodes})")
