"""Executable correctness properties of atomic multicast/broadcast.

Each checker inspects a finished run (the :class:`DeliveryLog` plus the
crash schedule and topology) and raises :class:`PropertyViolation` with
a precise explanation on failure.  The properties are the ones of paper
Section 2.2:

* **uniform integrity** — every process delivers a message at most
  once, only if addressed, and only if it was cast;
* **validity** — if a correct process casts m, every correct addressee
  delivers m;
* **uniform agreement** — if *any* process (even one that later
  crashes) delivers m, every correct addressee delivers m;
* **uniform prefix order** — for any two processes p, q, the delivery
  sequences projected on their common messages are prefix-related.

Because delivery sequences only ever grow, checking the final sequences
is equivalent to checking the "at any time t" formulation: a divergence
at time t persists to the end of the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.interfaces import AppMessage
from repro.failure.schedule import CrashSchedule
from repro.net.topology import Topology
from repro.runtime.results import DeliveryLog


class PropertyViolation(AssertionError):
    """A paper property failed on a concrete run."""


def check_uniform_integrity(log: DeliveryLog, topology: Topology) -> None:
    """At most once; only addressees; only cast messages."""
    cast = log.cast_messages()
    for pid in log.processes():
        seen = set()
        for msg in log.delivered_messages(pid):
            if msg.mid in seen:
                raise PropertyViolation(
                    f"process {pid} delivered {msg.mid} more than once"
                )
            seen.add(msg.mid)
            if msg.mid not in cast:
                raise PropertyViolation(
                    f"process {pid} delivered {msg.mid}, which was never cast"
                )
            if topology.group_of(pid) not in cast[msg.mid].dest_groups:
                raise PropertyViolation(
                    f"process {pid} (group {topology.group_of(pid)}) "
                    f"delivered {msg.mid} addressed to "
                    f"{cast[msg.mid].dest_groups}"
                )


def check_validity(
    log: DeliveryLog, topology: Topology, crashes: CrashSchedule
) -> None:
    """Correct caster => all correct addressees deliver."""
    for mid, msg in log.cast_messages().items():
        if crashes.is_faulty(msg.sender):
            continue
        _require_all_correct_addressees(log, topology, crashes, msg)


def check_uniform_agreement(
    log: DeliveryLog, topology: Topology, crashes: CrashSchedule
) -> None:
    """Any delivery => all correct addressees deliver."""
    for mid, msg in log.cast_messages().items():
        if not log.deliveries_of(mid):
            continue
        _require_all_correct_addressees(log, topology, crashes, msg)


def _require_all_correct_addressees(
    log: DeliveryLog, topology: Topology, crashes: CrashSchedule,
    msg: AppMessage,
) -> None:
    delivered_by = set(log.deliveries_of(msg.mid))
    for gid in msg.dest_groups:
        for pid in topology.members(gid):
            if crashes.is_faulty(pid):
                continue
            if pid not in delivered_by:
                raise PropertyViolation(
                    f"correct addressee {pid} never delivered {msg.mid} "
                    f"(delivered by {sorted(delivered_by)})"
                )


def check_uniform_prefix_order(log: DeliveryLog, topology: Topology) -> None:
    """Pairwise projected sequences must be prefix-related.

    The projection P_{p,q} keeps only the messages addressed to both
    p's and q's groups (paper Section 2.2).
    """
    cast = log.cast_messages()
    pids = log.processes()
    for i, p in enumerate(pids):
        for q in pids[i + 1:]:
            sp = _project(log.sequence(p), cast, topology, p, q)
            sq = _project(log.sequence(q), cast, topology, p, q)
            if not _is_prefix(sp, sq) and not _is_prefix(sq, sp):
                raise PropertyViolation(
                    f"prefix order violated between {p} and {q}: "
                    f"{sp} vs {sq}"
                )


def _project(
    sequence: Sequence[str], cast: Dict[str, AppMessage],
    topology: Topology, p: int, q: int,
) -> List[str]:
    gp, gq = topology.group_of(p), topology.group_of(q)
    return [
        mid for mid in sequence
        if gp in cast[mid].dest_groups and gq in cast[mid].dest_groups
    ]


def _is_prefix(a: Sequence[str], b: Sequence[str]) -> bool:
    return len(a) <= len(b) and list(b[: len(a)]) == list(a)


def check_all(
    log: DeliveryLog,
    topology: Topology,
    crashes: Optional[CrashSchedule] = None,
) -> None:
    """Run every property check (the standard post-run assertion)."""
    crashes = crashes or CrashSchedule.none()
    check_uniform_integrity(log, topology)
    check_validity(log, topology, crashes)
    check_uniform_agreement(log, topology, crashes)
    check_uniform_prefix_order(log, topology)
