"""Executable correctness properties of atomic multicast/broadcast.

Each checker inspects a finished run (the :class:`DeliveryLog` plus the
crash schedule and topology) and raises :class:`PropertyViolation` with
a precise explanation on failure.  The properties are the ones of paper
Section 2.2:

* **uniform integrity** — every process delivers a message at most
  once, only if addressed, and only if it was cast;
* **validity** — if a correct process casts m, every correct addressee
  delivers m;
* **uniform agreement** — if *any* process (even one that later
  crashes) delivers m, every correct addressee delivers m;
* **uniform prefix order** — for any two processes p, q, the delivery
  sequences projected on their common messages are prefix-related.

Because delivery sequences only ever grow, checking the final sequences
is equivalent to checking the "at any time t" formulation: a divergence
at time t persists to the end of the run.

Streaming implementations
-------------------------
The prefix-order check used to be an O(p²·m) pairwise scan — hopeless on
campaign-scale logs.  It is now a single near-linear pass built on two
reductions:

* **within a group** every member's projected sequence must be a prefix
  of a per-group *canonical* order (the union order in which members
  first reach each position); any two prefixes of the same sequence are
  automatically prefix-related;
* **across groups** the canonical orders, projected on the messages a
  group *pair* shares, must agree position by position — maintained as
  one shared merge list per pair, extended by whichever group reaches a
  position first.

Both reductions are order-insensitive folds over individual deliveries,
so the same core (:class:`StreamingPropertyChecker`) runs post-hoc over
a finished log *and* incrementally via delivery hooks
(``System.install_streaming_checker()``), flagging an order violation at
the exact delivery that introduces it.  Agreement and validity use the
delivery index the log maintains per message, replacing the old
per-message scan over every process's sequence.

The pre-streaming quadratic implementations live on in
``tests/unit/test_checkers_streaming.py`` as oracles; adversarial logs
assert both give identical verdicts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.interfaces import AppMessage
from repro.failure.schedule import CrashSchedule
from repro.net.topology import Topology
from repro.runtime.results import DeliveryLog


class PropertyViolation(AssertionError):
    """A paper property failed on a concrete run.

    ``context`` carries machine-readable details of the violating event
    (property name, pid, mid, position, ...) so the adversary explorer
    can persist a structured record of *what* broke alongside the
    replayable scenario that broke it.  It is additive: ``str(exc)``
    stays the human-readable message existing callers format.
    """

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.context: Dict[str, object] = context


def check_uniform_integrity(log: DeliveryLog, topology: Topology) -> None:
    """At most once; only addressees; only cast messages."""
    cast = log.cast_map
    for pid in log.processes():
        gid = topology.group_of(pid)
        seen = set()
        for msg in log.delivered_messages(pid):
            if msg.mid in seen:
                raise PropertyViolation(
                    f"process {pid} delivered {msg.mid} more than once",
                    property="uniform_integrity", kind="duplicate",
                    pid=pid, mid=msg.mid,
                )
            seen.add(msg.mid)
            if msg.mid not in cast:
                raise PropertyViolation(
                    f"process {pid} delivered {msg.mid}, "
                    f"which was never cast",
                    property="uniform_integrity", kind="uncast",
                    pid=pid, mid=msg.mid,
                )
            if gid not in cast[msg.mid].dest_groups:
                raise PropertyViolation(
                    f"process {pid} (group {gid}) "
                    f"delivered {msg.mid} addressed to "
                    f"{cast[msg.mid].dest_groups}",
                    property="uniform_integrity", kind="not_addressed",
                    pid=pid, mid=msg.mid,
                )


def check_validity(
    log: DeliveryLog, topology: Topology, crashes: CrashSchedule
) -> None:
    """Correct caster => all correct addressees deliver."""
    for mid, msg in log.cast_map.items():
        if crashes.is_faulty(msg.sender):
            continue
        _require_all_correct_addressees(log, topology, crashes, msg)


def check_uniform_agreement(
    log: DeliveryLog, topology: Topology, crashes: CrashSchedule
) -> None:
    """Any delivery => all correct addressees deliver."""
    for mid, msg in log.cast_map.items():
        if not log.deliveries_of(mid):
            continue
        _require_all_correct_addressees(log, topology, crashes, msg)


def _require_all_correct_addressees(
    log: DeliveryLog, topology: Topology, crashes: CrashSchedule,
    msg: AppMessage,
) -> None:
    delivered_by = set(log.deliveries_of(msg.mid))
    _require_addressees_in(delivered_by, topology, crashes, msg)


def _require_addressees_in(
    delivered_by: Set[int], topology: Topology, crashes: CrashSchedule,
    msg: AppMessage,
) -> None:
    for gid in msg.dest_groups:
        for pid in topology.members(gid):
            if crashes.is_faulty(pid):
                continue
            if pid not in delivered_by:
                raise PropertyViolation(
                    f"correct addressee {pid} never delivered {msg.mid} "
                    f"(delivered by {sorted(delivered_by)})",
                    property="agreement_or_validity", kind="missing",
                    pid=pid, mid=msg.mid,
                    delivered_by=sorted(delivered_by),
                )


# ----------------------------------------------------------------------
# Uniform prefix order, streaming
# ----------------------------------------------------------------------
class _PrefixOrderTracker:
    """Near-linear prefix-order verification, one delivery at a time.

    Soundness sketch.  Let C_g be the canonical order built for group g
    (only deliveries of messages actually addressed to g take part, as
    in the paper's projection).  Every member's projected sequence is
    checked index-by-index against C_g, so at all times it is a prefix
    of C_g — hence any two same-group members are prefix-related.  For
    groups g ≠ h, every *new position* of C_g that concerns a message
    shared with h is checked against the pair's merge list S_{g,h}
    (extended when g is first to the position), so the pair projections
    of C_g and C_h are both prefixes of S_{g,h} — hence prefix-related,
    and with them the projections of any p ∈ g, q ∈ h.  Conversely any
    violated pair diverges at some first position, and whichever group
    reaches that position second trips the mismatch — in either replay
    order.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._canon: Dict[int, List[str]] = {
            gid: [] for gid in topology.group_ids
        }
        self._ptr: Dict[int, int] = {pid: 0 for pid in topology.processes}
        # (gmin, gmax) -> [shared merge list, {gid: matched count}]
        self._pairs: Dict[Tuple[int, int], List] = {}

    def observe(self, pid: int, msg: AppMessage) -> None:
        """Fold one delivery in; raises on the first order violation."""
        gid = self.topology.group_of(pid)
        dest = msg.dest_groups
        if gid not in dest:
            # Not part of any projection involving pid's group; the
            # integrity checker reports stray deliveries separately.
            return
        canon = self._canon[gid]
        k = self._ptr[pid]
        self._ptr[pid] = k + 1
        if k < len(canon):
            if canon[k] != msg.mid:
                raise PropertyViolation(
                    f"prefix order violated within group {gid}: "
                    f"process {pid} delivered {msg.mid} at position {k} "
                    f"where {canon[k]} was delivered first",
                    property="uniform_prefix_order", kind="intra_group",
                    pid=pid, mid=msg.mid, position=k, expected=canon[k],
                    group=gid,
                )
            return
        canon.append(msg.mid)
        if len(dest) == 1:
            return
        for other in dest:
            if other == gid:
                continue
            key = (gid, other) if gid < other else (other, gid)
            state = self._pairs.get(key)
            if state is None:
                state = self._pairs[key] = [[], {key[0]: 0, key[1]: 0}]
            shared, matched = state
            i = matched[gid]
            matched[gid] = i + 1
            if i < len(shared):
                if shared[i] != msg.mid:
                    raise PropertyViolation(
                        f"prefix order violated between groups {gid} "
                        f"and {other}: position {i} of their common "
                        f"messages is {shared[i]} in one order and "
                        f"{msg.mid} in the other",
                        property="uniform_prefix_order",
                        kind="inter_group", pid=pid, mid=msg.mid,
                        position=i, expected=shared[i],
                        groups=sorted((gid, other)),
                    )
            else:
                shared.append(msg.mid)


def check_uniform_prefix_order(log: DeliveryLog, topology: Topology) -> None:
    """Pairwise projected sequences must be prefix-related.

    The projection P_{p,q} keeps only the messages addressed to both
    p's and q's groups (paper Section 2.2).  Implemented as one pass
    over the log via :class:`_PrefixOrderTracker` — O(total deliveries ×
    destination-set size) instead of the old O(p²·m) pairwise scan.
    """
    tracker = _PrefixOrderTracker(topology)
    for pid in log.processes():
        for msg in log.delivered_messages(pid):
            tracker.observe(pid, msg)


# ----------------------------------------------------------------------
# Incremental front-end
# ----------------------------------------------------------------------
class StreamingPropertyChecker:
    """Check the paper's properties *during* a run, via delivery hooks.

    Wire with ``system.install_streaming_checker()`` (or feed
    :meth:`on_cast` / :meth:`on_delivery` by hand when replaying a
    foreign log).  Integrity and prefix order are enforced at each
    delivery — a violating run fails at the exact event that broke the
    law, with the full simulator state still alive for debugging.
    Validity and agreement are completion properties; call
    :meth:`finalize` once the run is over.
    """

    def __init__(self, topology: Topology,
                 crashes: Optional[CrashSchedule] = None) -> None:
        self.topology = topology
        self.crashes = crashes or CrashSchedule.none()
        self._cast: Dict[str, AppMessage] = {}
        self._seen: Dict[int, Set[str]] = {}
        self._delivered_by: Dict[str, Set[int]] = {}
        self._prefix = _PrefixOrderTracker(topology)
        self.deliveries_checked = 0

    # ------------------------------------------------------------------
    def on_cast(self, msg: AppMessage) -> None:
        self._cast[msg.mid] = msg

    def on_delivery(self, pid: int, msg: AppMessage) -> None:
        """Integrity + prefix order for one delivery, immediately."""
        self.deliveries_checked += 1
        seen = self._seen.setdefault(pid, set())
        if msg.mid in seen:
            raise PropertyViolation(
                f"process {pid} delivered {msg.mid} more than once",
                property="uniform_integrity", kind="duplicate",
                pid=pid, mid=msg.mid,
            )
        seen.add(msg.mid)
        if msg.mid not in self._cast:
            raise PropertyViolation(
                f"process {pid} delivered {msg.mid}, which was never cast",
                property="uniform_integrity", kind="uncast",
                pid=pid, mid=msg.mid,
            )
        gid = self.topology.group_of(pid)
        if gid not in self._cast[msg.mid].dest_groups:
            raise PropertyViolation(
                f"process {pid} (group {gid}) delivered {msg.mid} "
                f"addressed to {self._cast[msg.mid].dest_groups}",
                property="uniform_integrity", kind="not_addressed",
                pid=pid, mid=msg.mid,
            )
        self._delivered_by.setdefault(msg.mid, set()).add(pid)
        self._prefix.observe(pid, msg)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Validity + uniform agreement over the accumulated state.

        Both properties impose the same obligation — every correct
        addressee delivers — and differ only in when it binds: validity
        when the caster is correct, agreement when anyone delivered.
        A message binds neither only when its caster is faulty and
        nobody delivered it.
        """
        for mid, msg in self._cast.items():
            delivered_by = self._delivered_by.get(mid, set())
            if not delivered_by and self.crashes.is_faulty(msg.sender):
                continue
            _require_addressees_in(delivered_by, self.topology,
                                   self.crashes, msg)


def check_all(
    log: DeliveryLog,
    topology: Topology,
    crashes: Optional[CrashSchedule] = None,
) -> None:
    """Run every property check (the standard post-run assertion)."""
    crashes = crashes or CrashSchedule.none()
    check_uniform_integrity(log, topology)
    check_validity(log, topology, crashes)
    check_uniform_agreement(log, topology, crashes)
    check_uniform_prefix_order(log, topology)
