"""Quiescence checker (paper Section 5, Proposition A.9).

An algorithm is *quiescent* when, provided finitely many messages are
cast, processes eventually stop sending messages.  In a discrete-event
simulation this has a crisp operational form: after the workload is
exhausted, the event queue must drain — if the protocol kept timers or
retransmissions alive forever, :meth:`Simulator.run_until_quiescent`
would trip its event budget instead.

:func:`check_quiescence` additionally reports *when* the last protocol
message was sent, so experiments can measure how quickly an algorithm
settles after its last delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.trace import MessageTrace
from repro.sim.kernel import SimulationError, Simulator


class QuiescenceViolation(AssertionError):
    """The system kept sending after a finite workload."""


@dataclass
class QuiescenceReport:
    """Outcome of a quiescence check."""

    quiescent: bool
    drained_at: Optional[float] = None
    last_send_at: Optional[float] = None


def check_quiescence(
    sim: Simulator,
    trace: Optional[MessageTrace] = None,
    max_events: int = 10_000_000,
) -> QuiescenceReport:
    """Run the simulation out and assert the event queue drains."""
    try:
        drained_at = sim.run_until_quiescent(max_events=max_events)
    except SimulationError as exc:
        raise QuiescenceViolation(str(exc)) from exc
    last_send = None
    if trace is not None and trace.enabled:
        last_send = trace.last_send_time()
    return QuiescenceReport(
        quiescent=True, drained_at=drained_at, last_send_at=last_send
    )
