"""Executable correctness properties from the paper."""

from repro.checkers.genuineness import (
    GenuinenessViolation, check_genuineness,
)
from repro.checkers.properties import (
    PropertyViolation,
    check_all,
    check_uniform_agreement,
    check_uniform_integrity,
    check_uniform_prefix_order,
    check_validity,
)
from repro.checkers.quiescence import (
    QuiescenceReport, QuiescenceViolation, check_quiescence,
)
from repro.checkers.stabilization import (
    StabilizationReport,
    StabilizationViolation,
    StreamingStabilizationChecker,
    check_stabilization,
)

__all__ = [
    "GenuinenessViolation", "check_genuineness", "PropertyViolation",
    "check_all", "check_uniform_agreement", "check_uniform_integrity",
    "check_uniform_prefix_order", "check_validity", "QuiescenceReport",
    "QuiescenceViolation", "check_quiescence", "StabilizationReport",
    "StabilizationViolation", "StreamingStabilizationChecker",
    "check_stabilization",
]
