"""Genuineness checker (paper Section 2.2).

An atomic multicast algorithm is *genuine* iff in every run, a process
that sends or receives any message either cast some message itself or is
an addressee of some cast message.

The checker needs the full message trace (build the system with
``trace=True``) and compares the set of processes that touched the
network against the union of casters and addressees.  The trace keeps
its participant sets incrementally, so this check is O(casts +
participants) — independent of the number of traced events.  It
deliberately ignores ideal failure-detector queries — those are
oracles, exactly as in the papers the paper builds on.
"""

from __future__ import annotations

from typing import Set

from repro.net.topology import Topology
from repro.net.trace import MessageTrace
from repro.runtime.results import DeliveryLog


class GenuinenessViolation(AssertionError):
    """A process outside every destination set touched the network."""


def allowed_participants(log: DeliveryLog, topology: Topology) -> Set[int]:
    """Casters plus every addressee of every cast message."""
    allowed: Set[int] = set()
    seen_dest = set()
    for msg in log.cast_map.values():
        allowed.add(msg.sender)
        if msg.dest_groups not in seen_dest:
            # Destination sets repeat heavily (broadcast runs have one);
            # expanding each distinct set once keeps this O(casts).
            seen_dest.add(msg.dest_groups)
            for gid in msg.dest_groups:
                allowed.update(topology.members(gid))
    return allowed


def check_genuineness(
    trace: MessageTrace, log: DeliveryLog, topology: Topology
) -> None:
    """Raise unless only casters/addressees sent or received messages."""
    if not trace.enabled:
        raise ValueError(
            "genuineness checking requires a system built with trace=True"
        )
    allowed = allowed_participants(log, topology)
    offenders = trace.participants() - allowed
    if offenders:
        raise GenuinenessViolation(
            f"processes {sorted(offenders)} participated but are neither "
            f"casters nor addressees (allowed: {sorted(allowed)})"
        )


def participation_count(trace: MessageTrace) -> int:
    """Number of distinct processes that touched the network."""
    return len(trace.participants())
