"""Self-stabilization checker for lossy-channel runs.

The lossy adversary kinds carry an ``until`` horizon: after that
virtual time the channel behaves again.  A run *self-stabilizes* when,
once the faults stop, every layer returns to a legal quiescent state on
its own — no operator, no reset:

* the **kernel** drains: no event (retransmission timer, pending ack,
  buffered flush) keeps the simulation alive forever;
* the **transport** drains: between correct endpoints nothing is left
  unacknowledged at any sender and no sequence gap is still parked in
  any receiver's reorder buffer (links with a crashed endpoint are
  exempt — quasi-reliability promises nothing across them);
* the **adversary honoured its horizon**: no fault fired at or after
  ``until`` (guards the injectors' contract, without which the other
  two clauses would be vacuously checking a fault-free run);
* the **protocol settled**: the streaming observer saw the last
  A-Deliver at some finite time, and if a horizon exists the check
  reports how long after it the system kept working — the
  stabilization time, the quantity the lossy-net campaign tables.

The safety properties themselves (validity, agreement, prefix order,
integrity) stay with :mod:`repro.checkers.properties`; campaigns pair
``"stabilization"`` with ``"properties"`` so a verdict of all-ok reads
"converged, *and* converged to a correct state".

:class:`StreamingStabilizationChecker` is the run-time half: a (pid,
msg) delivery hook that tracks the protocol's last activity
incrementally, so the post-run check needs no message trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checkers.properties import PropertyViolation


class StabilizationViolation(PropertyViolation):
    """The run failed to return to a quiescent legal state."""


class StreamingStabilizationChecker:
    """Incremental observer of protocol-level settling.

    Subscribes to every A-Deliver via ``System.add_delivery_hook``;
    keeps only two scalars, so it is safe to leave on in large
    campaigns (unlike the full message trace).
    """

    def __init__(self) -> None:
        self.deliveries = 0
        self.last_delivery_at: Optional[float] = None
        self._sim = None

    def attach(self, system) -> "StreamingStabilizationChecker":
        self._sim = system.sim
        system.add_delivery_hook(self.on_delivery)
        return self

    def on_delivery(self, pid: int, msg) -> None:
        self.deliveries += 1
        self.last_delivery_at = self._sim.now


@dataclass
class StabilizationReport:
    """Outcome of a stabilization check."""

    stabilized: bool
    #: Virtual time of the last admitted channel fault (None: no lossy
    #: injector fired).
    last_fault_at: Optional[float] = None
    #: The earliest fault horizon among the lossy injectors (None: no
    #: horizon configured).
    horizon: Optional[float] = None
    #: Virtual time of the last A-Deliver (None: streaming checker not
    #: installed, or nothing was delivered).
    last_delivery_at: Optional[float] = None
    #: ``last_delivery_at - horizon`` when both exist and the delivery
    #: came after the horizon; 0.0 when the system settled before the
    #: faults even stopped.
    settle_after_horizon: Optional[float] = None


def _lossy_injectors(applied):
    from repro.adversary.injectors import _LossyChannelInjector

    if applied is None:
        return []
    return [inj for inj in applied.injectors
            if isinstance(inj, _LossyChannelInjector)]


def check_stabilization(system) -> StabilizationReport:
    """Assert the run self-stabilized (see module docstring).

    Expects the simulation to have been run to quiescence already
    (``System.run_quiescent``); reads the live injectors from
    ``system.applied_adversary`` and the streaming observer from
    ``system.stabilization_checker`` when the campaign runner stashed
    them, and degrades gracefully when either is absent — a fault-free
    run with a mounted transport is simply required to have drained it.
    """
    pending = system.sim.pending_events
    if pending:
        raise StabilizationViolation(
            f"the event queue still holds {pending} event(s) after the "
            f"run: the system did not quiesce, let alone stabilize"
        )

    transport = getattr(system, "transport", None)
    if transport is not None:
        outstanding = transport.outstanding()
        stuck = {kind: links for kind, links in outstanding.items() if links}
        if stuck:
            raise StabilizationViolation(
                f"transport state between correct endpoints did not "
                f"drain: {stuck} (unacked = sender link -> frames never "
                f"acknowledged, buffered = receiver link -> sequence "
                f"gaps never filled)"
            )

    last_fault: Optional[float] = None
    horizon: Optional[float] = None
    applied = getattr(system, "applied_adversary", None)
    for injector in _lossy_injectors(applied):
        when = injector.last_fault_time
        if when is not None and (last_fault is None or when > last_fault):
            last_fault = when
        if injector.until is not None and (horizon is None
                                           or injector.until < horizon):
            horizon = injector.until
        if (injector.until is not None and when is not None
                and when >= injector.until):
            raise StabilizationViolation(
                f"{injector.spec.kind} injector fired at t={when:g}, at "
                f"or past its until={injector.until:g} horizon — the "
                f"faults never stopped, so stabilization is unfalsifiable"
            )

    checker = getattr(system, "stabilization_checker", None)
    last_delivery = checker.last_delivery_at if checker is not None else None
    settle: Optional[float] = None
    if last_delivery is not None and horizon is not None:
        settle = max(0.0, last_delivery - horizon)
    return StabilizationReport(
        stabilized=True, last_fault_at=last_fault, horizon=horizon,
        last_delivery_at=last_delivery, settle_after_horizon=settle,
    )
