"""Automatic counterexample shrinking.

When the explorer catches a checker violation, the raw failing case is
usually far bigger than the bug needs: hundreds of injected faults, a
full-size topology, a long workload.  :func:`shrink` minimises it with
a greedy fixpoint over four passes, each of which re-runs a candidate
case and keeps it only if it *still fails* (any checker violation
counts — like classic ddmin/QuickCheck shrinking, the minimum may pin
a different symptom of the same schedule-sensitivity, and that is
fine: the artifact records which checker tripped):

1. **fewer injectors** — drop whole injectors one at a time;
2. **fewer faults** — cap each injector's ``max_faults`` at what it
   actually injected, then bisect the cap down;
3. **bisected fault stream** — raise each injector's ``skip_faults``
   by bisection, discarding the prefix of fault opportunities the
   failure does not need (injector random draws are per-opportunity
   and gate-independent, so moving the window never reshuffles the
   stream);
4. **shorter horizon / smaller n** — halve the workload
   (duration/count/bursts), drop crash-schedule entries past the new
   horizon (:meth:`CrashSchedule.late_crashes` is the diagnostic), and
   try removing groups or group members while the crash spec stays
   valid.

Every candidate run is a full deterministic re-execution, so the final
minimum is guaranteed to reproduce: the emitted artifact replays the
shrunk case bit-identically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.adversary.explorer import CaseResult, run_case
from repro.adversary.spec import AdversarySpec, InjectorSpec


@dataclass
class ShrinkStep:
    """One accepted shrink: what changed and what it preserved."""

    description: str
    total_faults: int
    casts: int


@dataclass
class ShrinkOutcome:
    """The minimised case plus the path that led there."""

    original: CaseResult
    minimal: CaseResult
    steps: List[ShrinkStep] = field(default_factory=list)
    runs_used: int = 0
    budget_exhausted: bool = False

    def summary(self) -> dict:
        return {
            "runs_used": self.runs_used,
            "budget_exhausted": self.budget_exhausted,
            "original_faults": self.original.total_faults,
            "minimal_faults": self.minimal.total_faults,
            "original_casts": self.original.casts,
            "minimal_casts": self.minimal.casts,
            "steps": [s.description for s in self.steps],
        }


class _Shrinker:
    def __init__(self, case: CaseResult, budget: int,
                 runner: Callable[..., CaseResult]) -> None:
        if case.ok:
            raise ValueError("cannot shrink a passing case")
        self.current = case
        self.budget = budget
        self.runner = runner
        self.runs_used = 0
        self.steps: List[ShrinkStep] = []

    # ------------------------------------------------------------------
    def _try(self, scenario, adversary,
             description: str) -> Optional[CaseResult]:
        """Run a candidate; adopt and record it if it still fails."""
        if self.runs_used >= self.budget:
            return None
        self.runs_used += 1
        try:
            result = self.runner(scenario, adversary, self.current.seed)
        except Exception:
            # An invalid candidate (e.g. destinations need more groups
            # than remain) simply doesn't reproduce.
            return None
        if result.ok:
            return None
        self.current = result
        self.steps.append(ShrinkStep(
            description=description,
            total_faults=result.total_faults,
            casts=result.casts,
        ))
        return result

    @property
    def exhausted(self) -> bool:
        return self.runs_used >= self.budget

    # ------------------------------------------------------------------
    # Pass 1: drop whole injectors
    # ------------------------------------------------------------------
    def pass_drop_injectors(self) -> bool:
        improved = False
        i = 0
        while i < len(self.current.adversary.injectors):
            adv = self.current.adversary
            reduced = AdversarySpec(
                name=adv.name,
                injectors=adv.injectors[:i] + adv.injectors[i + 1:],
            )
            kind = adv.injectors[i].kind
            # An empty composition is a legal candidate: a case that
            # still fails benignly never needed the adversary at all.
            if self._try(
                    self.current.scenario, reduced,
                    f"dropped injector {i}:{kind}"):
                improved = True
                # The list shifted left; retry the same index.
            else:
                i += 1
            if self.exhausted:
                break
        return improved

    # ------------------------------------------------------------------
    # Pass 2 + 3: bisect each injector's fault window
    # ------------------------------------------------------------------
    def _replace_injector(self, index: int,
                          ispec: InjectorSpec) -> AdversarySpec:
        adv = self.current.adversary
        return AdversarySpec(
            name=adv.name,
            injectors=adv.injectors[:index] + (ispec,)
            + adv.injectors[index + 1:],
        )

    def pass_shrink_fault_windows(self) -> bool:
        improved = False
        for index in range(len(self.current.adversary.injectors)):
            if self.exhausted:
                break
            improved |= self._shrink_max_faults(index)
            improved |= self._raise_skip_faults(index)
        return improved

    def _injected_by(self, index: int) -> int:
        ispec = self.current.adversary.injectors[index]
        return self.current.fault_counts.get(
            f"{index}:{ispec.kind}", 0)

    def _shrink_max_faults(self, index: int) -> bool:
        """Bisect the smallest max_faults that still fails."""
        injected = self._injected_by(index)
        ispec = self.current.adversary.injectors[index]
        if ispec.max_faults is not None:
            injected = min(injected, ispec.max_faults)
        improved = False
        # Known-failing upper bound; 0 faults is presumed passing (if
        # it isn't, the first probe below discovers it for free).
        hi, lo = injected, 0
        while lo < hi and not self.exhausted:
            mid = (lo + hi) // 2
            candidate = self._replace_injector(
                index, ispec.with_window(max_faults=mid))
            if self._try(self.current.scenario, candidate,
                         f"injector {index}:{ispec.kind} "
                         f"max_faults -> {mid}"):
                hi = mid
                improved = True
                ispec = self.current.adversary.injectors[index]
            else:
                lo = mid + 1
        return improved

    def _raise_skip_faults(self, index: int) -> bool:
        """Bisect the largest skip_faults that still fails."""
        ispec = self.current.adversary.injectors[index]
        injected = self._injected_by(index)
        if injected == 0:
            return False
        improved = False
        # skip can grow by at most the number of faults still firing
        # minus the one we must keep; probe the window's start upward.
        lo, hi = ispec.skip_faults, ispec.skip_faults + injected - 1
        while lo < hi and not self.exhausted:
            mid = (lo + hi + 1) // 2
            candidate = self._replace_injector(
                index, ispec.with_window(skip_faults=mid))
            if self._try(self.current.scenario, candidate,
                         f"injector {index}:{ispec.kind} "
                         f"skip_faults -> {mid}"):
                lo = mid
                improved = True
                ispec = self.current.adversary.injectors[index]
            else:
                hi = mid - 1
        return improved

    # ------------------------------------------------------------------
    # Pass 4: shrink the scenario itself
    # ------------------------------------------------------------------
    def _workload_candidates(self, spec):
        wl = spec.workload
        if wl.kind == "poisson" and wl.duration > 2.0:
            yield (dataclasses.replace(wl, duration=wl.duration / 2),
                   f"duration -> {wl.duration / 2:g}")
        if wl.kind == "periodic" and wl.count > 2:
            yield (dataclasses.replace(wl, count=wl.count // 2),
                   f"count -> {wl.count // 2}")
        if wl.kind == "burst" and wl.bursts > 1:
            yield (dataclasses.replace(wl, bursts=wl.bursts // 2),
                   f"bursts -> {wl.bursts // 2}")

    def _horizon_of(self, workload) -> float:
        if workload.kind == "poisson":
            return workload.start + workload.duration
        if workload.kind == "periodic":
            return workload.start + workload.period * workload.count
        return workload.start + workload.gap * workload.bursts

    def pass_shrink_scenario(self) -> bool:
        improved = False
        # Shorter horizon, with the CrashSchedule horizon diagnostic
        # pruning now-dead explicit crashes in the same step.
        for wl, label in list(
                self._workload_candidates(self.current.scenario)):
            if self.exhausted:
                break
            scenario = dataclasses.replace(self.current.scenario,
                                           workload=wl)
            if scenario.crashes.kind == "explicit":
                from repro.failure.schedule import CrashSchedule

                horizon = self._horizon_of(wl)
                schedule = CrashSchedule(dict(scenario.crashes.crashes))
                late = schedule.late_crashes(horizon)
                if late:
                    kept = tuple(pair for pair in scenario.crashes.crashes
                                 if pair[0] not in late)
                    scenario = dataclasses.replace(
                        scenario,
                        crashes=dataclasses.replace(scenario.crashes,
                                                    crashes=kept),
                    )
                    label += f", {len(late)} late crash(es) dropped"
            if self._try(scenario, self.current.adversary,
                         f"workload {label}"):
                improved = True
        # Smaller n: drop the last group, then slim each group by one.
        sizes = self.current.scenario.group_sizes
        if len(sizes) > 2 and not self.exhausted:
            scenario = dataclasses.replace(self.current.scenario,
                                           group_sizes=sizes[:-1])
            if self._try(scenario, self.current.adversary,
                         f"groups -> {sizes[:-1]}"):
                improved = True
        sizes = self.current.scenario.group_sizes
        for gid in range(len(sizes)):
            if self.exhausted:
                break
            if sizes[gid] <= 1:
                continue
            slimmer = sizes[:gid] + (sizes[gid] - 1,) + sizes[gid + 1:]
            scenario = dataclasses.replace(self.current.scenario,
                                           group_sizes=slimmer)
            if self._try(scenario, self.current.adversary,
                         f"group_sizes -> {slimmer}"):
                improved = True
                sizes = self.current.scenario.group_sizes
        return improved

    # ------------------------------------------------------------------
    def run(self) -> bool:
        improved = self.pass_drop_injectors()
        improved |= self.pass_shrink_fault_windows()
        improved |= self.pass_shrink_scenario()
        return improved


def shrink(case: CaseResult, budget: int = 120,
           runner: Callable[..., CaseResult] = run_case) -> ShrinkOutcome:
    """Minimise a failing case to a small, still-failing reproducer.

    Runs the shrink passes to a fixpoint (or until ``budget`` candidate
    executions are spent).  The returned outcome's ``minimal`` case is
    always a real executed result — never a speculated one — so writing
    it straight into a replay artifact is sound.
    """
    shrinker = _Shrinker(case, budget, runner)
    while shrinker.run():
        if shrinker.exhausted:
            break
    return ShrinkOutcome(
        original=case,
        minimal=shrinker.current,
        steps=shrinker.steps,
        runs_used=shrinker.runs_used,
        budget_exhausted=shrinker.exhausted,
    )
