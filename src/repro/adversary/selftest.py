"""The explorer's canary: an intentionally broken protocol fixture.

:class:`BrokenFifoMulticast` is a deliberately naive sequencer protocol
that *assumes FIFO links*: a fixed sequencer (process 0) stamps every
message with a sequence number, fans it out, and receivers deliver in
arrival order, trusting that copies from the sequencer arrive in the
order they were sent.  Under benign schedules with fixed link latencies
that assumption holds and every paper property passes — exactly the
kind of bug that survives ordinary randomized testing.  The paper's
quasi-reliable links promise no ordering, so the ``delay-reorder``
adversary breaks it with a single held-back copy, and the shrinker
minimises the counterexample to a handful of faults.

This is Zave's "How to Make Chord Correct" lesson in miniature: the
protocol is only wrong on schedules an adversary must construct.  The
fixture is **test-only** — it is registered into the protocol registry
exclusively by :func:`register_selftest_protocol`, which the torture
CLI's ``--selftest`` mode and the adversary test-suite call; nothing in
the default registry exposes it.
"""

from __future__ import annotations

from repro.core.interfaces import AppMessage, AtomicMulticast

#: Registry name of the broken fixture (absent by default).
PROTOCOL_NAME = "broken-fifo"


class BrokenFifoMulticast(AtomicMulticast):
    """Sequencer multicast that (wrongly) trusts link-level FIFO.

    The sequencer is always process 0.  Known deliberate defects:

    * receivers deliver ``ord`` messages in *arrival* order without
      checking the sequence number — reordered links reorder
      deliveries (uniform prefix order breaks);
    * no sequencer failover — crash process 0 and liveness is gone.

    Do not fix; the adversary suite asserts these are caught.
    """

    SEQUENCER = 0

    def __init__(self, process, topology) -> None:
        self.process = process
        self.topology = topology
        self._deliver = None
        self._next_seq = 0  # used by the sequencer endpoint only
        process.register_handler("broken.req", self._on_req)
        process.register_handler("broken.ord", self._on_ord)

    def set_delivery_handler(self, handler) -> None:
        self._deliver = handler

    # ------------------------------------------------------------------
    def a_mcast(self, msg: AppMessage) -> None:
        self.process.send(self.SEQUENCER, "broken.req",
                          {"wire": msg.to_wire()})

    def _on_req(self, net_msg) -> None:
        seq = self._next_seq
        self._next_seq += 1
        wire = net_msg.payload["wire"]
        dest_groups = AppMessage.from_wire(wire).dest_groups
        dests = self.topology.processes_of_groups(dest_groups)
        self.process.send_many(dests, "broken.ord",
                               {"wire": wire, "seq": seq})

    def _on_ord(self, net_msg) -> None:
        # BUG (deliberate): payload["seq"] is ignored — delivery happens
        # in arrival order, which is sequencing order only on FIFO links.
        self._deliver(AppMessage.from_wire(net_msg.payload["wire"]))


def _make_broken_fifo(system, process, **kw):
    return BrokenFifoMulticast(process, system.topology, **kw)


def register_selftest_protocol() -> None:
    """Expose the broken fixture to ``build_system`` (idempotent)."""
    from repro.runtime.builder import PROTOCOLS

    PROTOCOLS.setdefault(PROTOCOL_NAME, _make_broken_fifo)
