"""The schedule-exploration engine: run one case, capture what broke.

A *case* is a (scenario, adversary, seed) triple.  :func:`run_case`
builds the system through the campaign runner's shared construction
path, lets the adversary perturb the schedule, runs to quiescence and
then runs the scenario's checkers — capturing the first violation with
its structured context instead of propagating it, plus everything a
reproducer needs: per-process delivery orders, fault counts, event
totals.

Mids are canonicalised by cast order (``c000000`` is the first cast of
the run) before they appear in a :class:`CaseResult`: the repository's
message-id generator is a process-global counter, so raw mids differ
between two runs of the same case in one interpreter even though the
runs are behaviourally identical.  Canonical orders are the
replay-comparison currency.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adversary.spec import AdversarySpec
from repro.campaigns.runner import CHECKERS, build_scenario_system
from repro.campaigns.spec import ScenarioSpec
from repro.checkers.properties import PropertyViolation
from repro.sim.kernel import SimulationError

_MID_PATTERN = re.compile(r"m\d{6,}")


@dataclass
class Violation:
    """One captured checker failure, with machine-readable context."""

    checker: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"checker": self.checker, "message": self.message,
                "context": dict(self.context)}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(checker=data["checker"], message=data["message"],
                   context=dict(data.get("context", {})))


@dataclass
class CaseResult:
    """Everything observed while running one (scenario, adversary, seed).

    ``delivery_orders`` and all mids inside ``verdicts``/``violation``
    are canonical (renumbered by cast order), so two executions of the
    same case compare equal exactly when they behaved identically.
    """

    scenario: ScenarioSpec
    adversary: AdversarySpec
    seed: int
    verdicts: Dict[str, str]
    violation: Optional[Violation]
    delivery_orders: Dict[int, List[str]]
    casts: int
    deliveries: int
    events: int
    fault_counts: Dict[str, int]
    total_faults: int
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return self.violation is None

    def describe(self) -> str:
        tag = "ok" if self.ok else f"FAIL[{self.violation.checker}]"
        return (f"{self.scenario.name} × {self.adversary.name} "
                f"seed={self.seed}: {tag} "
                f"({self.casts} casts, {self.total_faults} faults)")


def _canonicalise(text: str, mapping: Dict[str, str]) -> str:
    """Replace raw mids in a message with their canonical names."""
    return _MID_PATTERN.sub(lambda m: mapping.get(m.group(), m.group()),
                            text)


def _canonical_context(context: Dict[str, object],
                       mapping: Dict[str, str]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for key, value in context.items():
        if isinstance(value, str):
            out[key] = _canonicalise(value, mapping)
        else:
            out[key] = value
    return out


def run_case(scenario: ScenarioSpec, adversary: AdversarySpec,
             seed: int) -> CaseResult:
    """Execute one case and capture (rather than raise) any violation.

    The scenario's declared ``adversary`` name is ignored: the explicit
    ``adversary`` spec is applied instead, which is what lets the
    shrinker run perturbed copies of a failing adversary that exist in
    no registry.  Non-quiescence (the kernel's max_events tripwire) is
    captured as a ``quiescence`` violation — a liveness failure is a
    counterexample too.
    """
    t0 = time.perf_counter()
    system, plans, applied = build_scenario_system(
        scenario, seed, adversary=adversary)
    violation: Optional[Violation] = None
    try:
        system.run_quiescent(max_events=scenario.max_events)
    except SimulationError as exc:
        violation = Violation(checker="quiescence", message=str(exc))

    # Canonical mid mapping: cast_map is insertion-ordered = cast order.
    mapping = {mid: f"c{i:06d}"
               for i, mid in enumerate(system.log.cast_map)}
    verdicts: Dict[str, str] = {}
    if violation is None:
        for name in scenario.checkers:
            try:
                CHECKERS[name](system)
                verdicts[name] = "ok"
            except PropertyViolation as exc:
                message = _canonicalise(str(exc), mapping)
                verdicts[name] = f"FAIL: {message}"
                if violation is None:
                    violation = Violation(
                        checker=name, message=message,
                        context=_canonical_context(exc.context, mapping),
                    )
            except AssertionError as exc:
                message = _canonicalise(str(exc), mapping)
                verdicts[name] = f"FAIL: {message}"
                if violation is None:
                    violation = Violation(checker=name, message=message)
    else:
        verdicts = {name: "skipped: run did not quiesce"
                    for name in scenario.checkers}

    if violation is not None and applied is not None:
        violation.context.setdefault("faults_injected",
                                     applied.total_faults)
        violation.context.setdefault("virtual_time", system.sim.now)

    # .get: a broken protocol may deliver a mid that was never cast;
    # the raw mid is kept (and the integrity checker reports it).
    orders = {
        pid: [mapping.get(mid, mid) for mid in system.log.sequence(pid)]
        for pid in system.log.processes()
    }
    return CaseResult(
        scenario=scenario,
        adversary=adversary,
        seed=seed,
        verdicts=verdicts,
        violation=violation,
        delivery_orders=orders,
        casts=len(system.log.cast_map),
        deliveries=system.log.delivery_count(),
        events=system.sim.events_executed,
        fault_counts=(applied.fault_counts() if applied else {}),
        total_faults=(applied.total_faults if applied else 0),
        wall_seconds=time.perf_counter() - t0,
    )
