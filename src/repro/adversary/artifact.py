"""Replayable counterexample artifacts.

An artifact is a self-contained JSON record of one explorer case: the
full (lossless) scenario spec, the adversary spec, the seed, and the
*expected* observable outcome — canonical per-process delivery orders,
checker verdicts, cast/fault counts, and the captured violation if the
case failed.  ``repro.cli replay <artifact>`` rebuilds the case from
the specs alone, re-runs it, and compares the fresh outcome against the
expected block field by field; because every random stream derives from
the recorded seed, a healthy checkout reproduces bit-identically.

Artifacts are the currency of the torture pipeline: the shrinker emits
one per minimised counterexample, CI uploads them on failure, and two
hand-minimised ones are committed as golden files under
``tests/adversary/golden/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adversary.explorer import CaseResult, Violation, run_case
from repro.adversary.spec import AdversarySpec
from repro.campaigns.spec import ScenarioSpec

#: Artifact schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.adversary.artifact/v1"


def case_to_artifact(case: CaseResult,
                     shrink_summary: Optional[dict] = None) -> dict:
    """Serialise an executed case into the replayable artifact layout."""
    return {
        "schema": SCHEMA,
        "scenario": case.scenario.to_dict(),
        "adversary": case.adversary.to_dict(),
        "seed": case.seed,
        "violation": (case.violation.to_dict()
                      if case.violation else None),
        "expected": {
            "verdicts": dict(case.verdicts),
            "delivery_orders": {str(pid): list(order)
                                for pid, order in
                                sorted(case.delivery_orders.items())},
            "casts": case.casts,
            "deliveries": case.deliveries,
            "total_faults": case.total_faults,
            "fault_counts": dict(case.fault_counts),
        },
        "shrink": shrink_summary,
    }


def write_artifact(case: CaseResult, path: str,
                   shrink_summary: Optional[dict] = None) -> str:
    """Write the artifact JSON for ``case`` to ``path``."""
    data = case_to_artifact(case, shrink_summary=shrink_summary)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return path


def load_artifact(path: str) -> dict:
    """Load and schema-check an artifact file."""
    with open(path) as fh:
        data = json.load(fh)
    found = data.get("schema")
    if found != SCHEMA:
        raise ValueError(
            f"{path}: not an adversary artifact "
            f"(schema {found!r}, expected {SCHEMA!r})"
        )
    for key in ("scenario", "adversary", "seed", "expected"):
        if key not in data:
            raise ValueError(f"{path}: artifact is missing {key!r}")
    return data


@dataclass
class ReplayResult:
    """Outcome of replaying an artifact against the current code."""

    case: CaseResult
    reproduced: bool
    diffs: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.reproduced:
            verdict = ("violation reproduced"
                       if self.case.violation else "checkers green")
            return (f"reproduced bit-identically ({verdict}, "
                    f"{self.case.casts} casts, "
                    f"{self.case.total_faults} faults)")
        return "DIVERGED:\n  " + "\n  ".join(self.diffs)


def replay(data: dict) -> ReplayResult:
    """Re-run an artifact's case and diff it against the expected block.

    The comparison covers exactly the determinism guarantee: checker
    verdicts (canonical-mid text included), per-process delivery
    orders, and the cast/delivery/fault counts.  Wall clocks and event
    totals are deliberately not compared — they may legitimately drift
    as the engine gets faster.
    """
    scenario = ScenarioSpec.from_dict(data["scenario"])
    adversary = AdversarySpec.from_dict(data["adversary"])
    _ensure_protocol(scenario.protocol)
    case = run_case(scenario, adversary, data["seed"])
    expected = data["expected"]
    diffs: List[str] = []

    got_verdicts = dict(case.verdicts)
    if got_verdicts != expected["verdicts"]:
        for name in sorted(set(got_verdicts) | set(expected["verdicts"])):
            want = expected["verdicts"].get(name)
            got = got_verdicts.get(name)
            if want != got:
                diffs.append(f"verdict[{name}]: expected {want!r}, "
                             f"got {got!r}")
    got_orders = {str(pid): order
                  for pid, order in case.delivery_orders.items()}
    want_orders = expected["delivery_orders"]
    if got_orders != want_orders:
        for pid in sorted(set(got_orders) | set(want_orders)):
            if got_orders.get(pid) != want_orders.get(pid):
                diffs.append(f"delivery order of pid {pid} diverged")
    for counter in ("casts", "deliveries", "total_faults"):
        want = expected[counter]
        got = getattr(case, counter)
        if want != got:
            diffs.append(f"{counter}: expected {want}, got {got}")

    want_violation = data.get("violation")
    got_violation = case.violation.to_dict() if case.violation else None
    if (want_violation is None) != (got_violation is None):
        diffs.append(
            f"violation presence: expected "
            f"{'one' if want_violation else 'none'}, "
            f"got {'one' if got_violation else 'none'}"
        )
    elif want_violation and got_violation["checker"] != \
            want_violation["checker"]:
        diffs.append(
            f"violating checker: expected "
            f"{want_violation['checker']!r}, "
            f"got {got_violation['checker']!r}"
        )

    return ReplayResult(case=case, reproduced=not diffs, diffs=diffs)


def replay_file(path: str) -> ReplayResult:
    """Load an artifact file and replay it."""
    return replay(load_artifact(path))


def _ensure_protocol(name: str) -> None:
    """Register the self-test canary protocol when an artifact needs it.

    Golden artifacts for the intentionally-broken fixture name a
    protocol that is deliberately absent from the default registry;
    replay is the one place it gets auto-registered.
    """
    from repro.runtime.builder import PROTOCOLS

    if name not in PROTOCOLS:
        from repro.adversary import selftest

        if name == selftest.PROTOCOL_NAME:
            selftest.register_selftest_protocol()
