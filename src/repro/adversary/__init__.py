"""Adversarial schedule exploration with counterexample shrinking.

The subsystem that torture-tests the paper's correctness claims:

* :mod:`repro.adversary.spec` — declarative, seeded
  :class:`AdversarySpec` compositions of fault injectors;
* :mod:`repro.adversary.injectors` — the live injectors (per-link
  latency skew, bounded delay/reorder, group-partition latency spikes,
  phase-boundary crashes), all within quasi-reliable link semantics;
* :mod:`repro.adversary.explorer` — run one (scenario, adversary,
  seed) case and capture checker violations with context;
* :mod:`repro.adversary.shrink` — minimise a failing case (fewer
  faults, bisected fault stream, shorter horizon, smaller topology);
* :mod:`repro.adversary.artifact` — replayable JSON counterexamples
  (``repro.cli replay <artifact>``);
* :mod:`repro.adversary.selftest` — the intentionally broken protocol
  fixture proving the pipeline catches real ordering bugs.

Front doors: ``repro.cli torture`` and the ``adversary=`` axis of
campaign scenarios.
"""

from repro.adversary.explorer import CaseResult, Violation, run_case
from repro.adversary.injectors import apply_adversary
from repro.adversary.shrink import ShrinkOutcome, shrink
from repro.adversary.spec import (
    ADVERSARIES,
    AdversarySpec,
    InjectorSpec,
    get_adversary,
    register_adversary,
)

__all__ = [
    "ADVERSARIES",
    "AdversarySpec",
    "CaseResult",
    "InjectorSpec",
    "ShrinkOutcome",
    "Violation",
    "apply_adversary",
    "get_adversary",
    "register_adversary",
    "run_case",
    "shrink",
]
