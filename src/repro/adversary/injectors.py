"""Live fault injectors: seeded schedule perturbation within the model.

Each injector attaches to a built :class:`~repro.runtime.builder.System`
through the network's injector hook points — delay hooks for latency
perturbation, delivery filters for phase-triggered crashes — and draws
randomness only from its own named stream of the run's root seed.

The delay and crash injectors stay inside the paper's system model:

* **quasi-reliable links** — delay-based injectors only stretch a
  copy's latency; nothing is corrupted, duplicated or dropped, so a
  message between two correct processes is still delivered exactly
  once (just later, possibly reordered against other traffic — the
  paper assumes no FIFO ordering);
* **crash-stop failures** — the phase-crash injector crashes its
  target exactly the way a :class:`CrashSchedule` entry would, and
  registers the crash with the run's schedule so the post-run
  checkers' notion of "correct process" stays truthful.  Targets are
  validated up front against the per-group majority requirement.

The **lossy kinds** (``drop``/``duplicate``/``corrupt``) deliberately
step *outside* that envelope: they break the quasi-reliable link axiom
itself.  Against ``transport="none"`` they falsify the protocols'
delivery assumptions (that is their test value — the torture explorer
catches and shrinks the resulting violations); against
``transport="reliable"`` the sequenced retransmitting transport of
:mod:`repro.transport.reliable` masks them and every property must stay
green.  Each lossy injector takes an optional ``until`` horizon (virtual
time after which no further fault fires) so a run can demonstrate
self-stabilization: faults stop, the transport drains, the system
quiesces — :mod:`repro.checkers.stabilization` asserts exactly that.
Per-copy decisions come from a shared :class:`~repro.net.channel.
ChannelModel`, which spends a constant two draws per in-scope copy, so
the shrinker's window narrowing never realigns the fault stream.

Fault accounting
----------------
Injectors count *fault opportunities* (copies they would perturb) and
*faults injected* (copies actually perturbed).  The spec's
``skip_faults``/``max_faults`` window gates opportunities into faults;
random draws happen for every opportunity regardless of the gate, so
narrowing the window never shifts the injector's random stream — the
alignment the shrinker's bisection relies on.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.adversary.spec import AdversarySpec, InjectorSpec
from repro.failure.schedule import CrashSchedule
from repro.net.channel import ChannelModel
from repro.net.message import Message
from repro.runtime.profiler import classify_kind


class FaultInjector:
    """Base class: fault-window gating and (un)installation."""

    def __init__(self, spec: InjectorSpec, system,
                 rng: random.Random) -> None:
        self.spec = spec
        self.system = system
        self.rng = rng
        self.opportunities = 0
        self.faults_injected = 0

    # ------------------------------------------------------------------
    def _gate(self) -> bool:
        """Admit one fault opportunity through the spec's window."""
        i = self.opportunities
        self.opportunities += 1
        if i < self.spec.skip_faults:
            return False
        if (self.spec.max_faults is not None
                and self.faults_injected >= self.spec.max_faults):
            return False
        self.faults_injected += 1
        return True

    # ------------------------------------------------------------------
    def install(self) -> None:
        raise NotImplementedError

    def uninstall(self) -> None:
        raise NotImplementedError


class LinkSkewInjector(FaultInjector):
    """Persistently skew the latency of selected inter-group links.

    Params: ``factor`` (delay multiplier, default 5.0), ``src_gid``
    (source group whose outbound inter-group links are skewed, default
    0), optional ``dst_gid`` (restrict to one destination group).
    """

    def __init__(self, spec, system, rng):
        super().__init__(spec, system, rng)
        params = spec.params_dict()
        self.factor = float(params.get("factor", 5.0))
        self.src_gid = params.get("src_gid", 0)
        self.dst_gid = params.get("dst_gid")
        if self.factor < 0:
            raise ValueError(f"link-skew factor must be >= 0, "
                             f"got {self.factor}")
        self._group_of = system.topology.group_index

    def install(self) -> None:
        self.system.network.add_delay_hook(self._on_delay)

    def uninstall(self) -> None:
        self.system.network.remove_delay_hook(self._on_delay)

    def _on_delay(self, msg: Message, delay: float) -> float:
        src_gid = self._group_of[msg.src]
        dst_gid = self._group_of[msg.dst]
        if src_gid != self.src_gid or dst_gid == src_gid:
            return delay
        if self.dst_gid is not None and dst_gid != self.dst_gid:
            return delay
        if not self._gate():
            return delay
        return delay * self.factor


class DelayReorderInjector(FaultInjector):
    """Hold random copies back a bounded extra delay, reordering them.

    Params: ``probability`` (per-copy fault probability, default 0.15),
    ``extra_min``/``extra_max`` (bounds of the added delay, default
    0.5/5.0), ``scope`` (``"all"``/``"inter"``/``"intra"``, default
    ``"all"``).

    One uniform draw happens per in-scope copy whether or not the copy
    is perturbed; the added delay is derived from the same draw, so the
    fault decisions of copies outside the shrinker's window are
    unchanged when the window moves.
    """

    def __init__(self, spec, system, rng):
        super().__init__(spec, system, rng)
        params = spec.params_dict()
        self.probability = float(params.get("probability", 0.15))
        self.extra_min = float(params.get("extra_min", 0.5))
        self.extra_max = float(params.get("extra_max", 5.0))
        self.scope = params.get("scope", "all")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"delay-reorder probability must be in "
                             f"(0, 1], got {self.probability}")
        if not 0.0 <= self.extra_min <= self.extra_max:
            raise ValueError(
                f"delay-reorder needs 0 <= extra_min <= extra_max, got "
                f"{self.extra_min}/{self.extra_max}")
        if self.scope not in ("all", "inter", "intra"):
            raise ValueError(f"delay-reorder scope must be all/inter/"
                             f"intra, got {self.scope!r}")

    def install(self) -> None:
        self.system.network.add_delay_hook(self._on_delay)

    def uninstall(self) -> None:
        self.system.network.remove_delay_hook(self._on_delay)

    def _on_delay(self, msg: Message, delay: float) -> float:
        if self.scope == "inter" and not msg.inter_group:
            return delay
        if self.scope == "intra" and msg.inter_group:
            return delay
        u = self.rng.random()
        if u >= self.probability:
            return delay
        if not self._gate():
            return delay
        span = self.extra_max - self.extra_min
        return delay + self.extra_min + (u / self.probability) * span


class PartitionSpikeInjector(FaultInjector):
    """Latency-spike a group partition for a window of virtual time.

    Params: ``start``/``duration`` (the window, defaults 5.0/15.0),
    ``spike`` (added delay for copies crossing the partition boundary,
    default 10.0), ``groups`` (one side of the partition, default
    ``(0,)``).

    Copies are delayed, never dropped: this is the transient-partition
    behaviour quasi-reliable links actually exhibit — the protocols
    must ride it out without violating safety.
    """

    def __init__(self, spec, system, rng):
        super().__init__(spec, system, rng)
        params = spec.params_dict()
        self.start = float(params.get("start", 5.0))
        self.duration = float(params.get("duration", 15.0))
        self.spike = float(params.get("spike", 10.0))
        self.groups = frozenset(params.get("groups", (0,)))
        if self.duration < 0 or self.spike < 0:
            raise ValueError("partition-spike duration and spike must "
                             "be >= 0")
        self._group_of = system.topology.group_index
        self._sim = system.sim

    def install(self) -> None:
        self.system.network.add_delay_hook(self._on_delay)

    def uninstall(self) -> None:
        self.system.network.remove_delay_hook(self._on_delay)

    def _on_delay(self, msg: Message, delay: float) -> float:
        now = self._sim.now
        if not (self.start <= now < self.start + self.duration):
            return delay
        if ((self._group_of[msg.src] in self.groups)
                == (self._group_of[msg.dst] in self.groups)):
            return delay  # both sides of the boundary, or neither
        if not self._gate():
            return delay
        return delay + self.spike


class PhaseCrashInjector(FaultInjector):
    """Crash a target process at a protocol-phase boundary.

    Params: ``target`` (pid, default 0), ``at_count`` (crash when the
    target handles its Nth matching message, default 3), and one of
    ``phase`` (a :func:`~repro.runtime.profiler.classify_kind` phase:
    ``"protocol"``/``"consensus"``/``"failure_detection"``, default
    ``"consensus"``) or ``kind_contains`` (literal substring of the
    message kind, e.g. ``".cons.accept"``).

    Implemented as a delivery filter: matching deliveries are counted;
    from the ``at_count``-th onwards each is a fault opportunity, and
    the first one through the shrink window crashes the target right
    before the handler would run (the copy is then dropped, exactly as
    if the crash had happened an instant earlier).  The crash is
    recorded on the run's :class:`CrashSchedule` so checkers treat the
    target as faulty.
    """

    def __init__(self, spec, system, rng):
        super().__init__(spec, system, rng)
        params = spec.params_dict()
        self.target = int(params.get("target", 0))
        self.at_count = int(params.get("at_count", 3))
        self.kind_contains = params.get("kind_contains")
        self.phase = params.get("phase",
                                None if self.kind_contains else "consensus")
        if self.at_count < 1:
            raise ValueError(f"phase-crash at_count must be >= 1, "
                             f"got {self.at_count}")
        if self.kind_contains is not None and self.phase is not None:
            raise ValueError("phase-crash takes phase OR kind_contains, "
                             "not both")
        self.matched = 0
        self.crashed_at: Optional[float] = None

    def validate(self) -> None:
        """The target must be expendable: majority survives its crash."""
        union = dict(self.system.crashes.crashes)
        union.setdefault(self.target, 0.0)
        CrashSchedule(union).validate(self.system.topology)

    def install(self) -> None:
        self.validate()
        self.system.network.add_delivery_filter(self._on_delivery)

    def uninstall(self) -> None:
        self.system.network.remove_delivery_filter(self._on_delivery)

    def _matches(self, msg: Message) -> bool:
        if msg.dst != self.target:
            return False
        if self.kind_contains is not None:
            return self.kind_contains in msg.kind
        return classify_kind(msg.kind) == self.phase

    def _on_delivery(self, msg: Message) -> bool:
        if self.crashed_at is not None or not self._matches(msg):
            return True
        self.matched += 1
        if self.matched < self.at_count:
            return True
        if not self._gate():
            return True
        now = self.system.sim.now
        self.crashed_at = now
        self.system.crashes.record_observed(self.target, now)
        self.system.network.process(self.target).crash()
        return False


class _LossyChannelInjector(FaultInjector):
    """Shared machinery of the lossy kinds: one seeded channel model.

    Common params: ``probability`` (per-copy fault probability in the
    good state), ``scope`` (``"all"``/``"inter"``/``"intra"``, default
    ``"all"``), ``until`` (virtual-time fault horizon, default None =
    forever), and the :class:`ChannelModel` burst knobs
    ``burst_probability``/``burst_enter``/``burst_exit`` (defaults off).

    The last admitted fault's virtual time is kept on
    ``last_fault_time`` so the stabilization checker can assert the
    horizon was honoured.
    """

    DEFAULT_PROBABILITY = 0.1

    def __init__(self, spec, system, rng):
        super().__init__(spec, system, rng)
        params = spec.params_dict()
        self.probability = float(
            params.get("probability", self.DEFAULT_PROBABILITY))
        self.scope = params.get("scope", "all")
        until = params.get("until")
        self.until = None if until is None else float(until)
        if self.scope not in ("all", "inter", "intra"):
            raise ValueError(f"{spec.kind} scope must be all/inter/intra, "
                             f"got {self.scope!r}")
        if self.until is not None and self.until < 0:
            raise ValueError(f"{spec.kind} until must be >= 0, "
                             f"got {self.until}")
        self.channel = ChannelModel(
            rng,
            self.probability,
            burst_probability=float(params.get("burst_probability", 0.0)),
            burst_enter=float(params.get("burst_enter", 0.0)),
            burst_exit=float(params.get("burst_exit", 0.25)),
        )
        self.last_fault_time: Optional[float] = None
        self._sim = system.sim

    def _decide(self, msg: Message) -> Optional[float]:
        """One per-copy fault decision; None means leave the copy alone.

        When the fault is admitted, the returned magnitude is uniform
        on [0, 1) and derived from the fault draw itself (the
        :class:`DelayReorderInjector` convention: one decision fixes
        the whole fault).  Draw discipline: zero draws out of scope,
        exactly two otherwise — the horizon and the shrink window gate
        *after* the draws, so narrowing either never shifts the stream.
        """
        if self.scope == "inter" and not msg.inter_group:
            return None
        if self.scope == "intra" and msg.inter_group:
            return None
        fault, u = self.channel.roll(msg.src, msg.dst)
        if not fault:
            return None
        now = self._sim.now
        if self.until is not None and now >= self.until:
            return None
        if not self._gate():
            return None
        self.last_fault_time = now
        p = (self.channel.burst_probability
             if self.channel.in_burst(msg.src, msg.dst)
             else self.probability)
        return u / p


class DropInjector(_LossyChannelInjector):
    """Lose random message copies on the wire.

    Params: the :class:`_LossyChannelInjector` set.  Implemented as a
    delivery filter, so a dropped copy is accounted exactly like one
    addressed to a crashed process (``stats.dropped``); with
    ``burst_enter > 0`` losses cluster per link (Gilbert–Elliott).
    Heartbeats and transport acks are *not* exempt — loss must be
    indistinguishable from slowness at every layer above the wire.
    """

    def install(self) -> None:
        self.system.network.add_delivery_filter(self._on_delivery)

    def uninstall(self) -> None:
        self.system.network.remove_delivery_filter(self._on_delivery)

    def _on_delivery(self, msg: Message) -> bool:
        return self._decide(msg) is None


class DuplicateInjector(_LossyChannelInjector):
    """Re-deliver random copies a second time, later.

    Params: the :class:`_LossyChannelInjector` set plus
    ``extra_min``/``extra_max`` (bounds of the clone's extra delay
    beyond the original copy's, defaults 0.0/2.0).  Implemented as a
    delay hook that leaves the original copy's delay untouched and
    schedules one clone through :meth:`Network.inject_copy`, so the
    duplicate is a first-class wire copy: traced, counted, filtered
    and deduplicated like any other.
    """

    def __init__(self, spec, system, rng):
        super().__init__(spec, system, rng)
        params = spec.params_dict()
        self.extra_min = float(params.get("extra_min", 0.0))
        self.extra_max = float(params.get("extra_max", 2.0))
        if not 0.0 <= self.extra_min <= self.extra_max:
            raise ValueError(
                f"duplicate needs 0 <= extra_min <= extra_max, got "
                f"{self.extra_min}/{self.extra_max}")

    def install(self) -> None:
        self.system.network.add_delay_hook(self._on_delay)

    def uninstall(self) -> None:
        self.system.network.remove_delay_hook(self._on_delay)

    def _on_delay(self, msg: Message, delay: float) -> float:
        magnitude = self._decide(msg)
        if magnitude is not None:
            span = self.extra_max - self.extra_min
            self.system.network.inject_copy(
                msg, delay + self.extra_min + magnitude * span)
        return delay


class CorruptInjector(_LossyChannelInjector):
    """Damage random copies in flight (modeled frame corruption).

    Params: the :class:`_LossyChannelInjector` set (default
    ``probability`` 0.05).  A sequenced transport frame gets the
    checksum byte of its envelope frame word (``msg.wire``) XOR-damaged
    — mask derived from the fault draw, never zero, sequence bits
    intact — so the receiving transport *must* detect it and the damage
    degrades to a loss the retransmission machinery repairs.  An
    unsequenced copy — raw protocol traffic under ``transport="none"``,
    heartbeats, acks — is dropped outright, which is what a link-layer
    CRC does with a frame it cannot verify.

    The frame word is per copy (``send_many`` copies and injected
    duplicates share a payload dict but never an envelope), so damaging
    this copy can never bleed into its siblings.
    """

    DEFAULT_PROBABILITY = 0.05

    def install(self) -> None:
        self.system.network.add_delivery_filter(self._on_delivery)

    def uninstall(self) -> None:
        self.system.network.remove_delivery_filter(self._on_delivery)

    def _on_delivery(self, msg: Message) -> bool:
        magnitude = self._decide(msg)
        if magnitude is None:
            return True
        if msg.wire is None:
            return False  # unverifiable frame: the link CRC eats it
        mask = 1 + int(magnitude * 254.999)  # 1..255: always detectable
        msg.wire ^= mask
        return True


INJECTOR_TYPES: Dict[str, Callable[..., FaultInjector]] = {
    "link-skew": LinkSkewInjector,
    "delay-reorder": DelayReorderInjector,
    "partition-spike": PartitionSpikeInjector,
    "phase-crash": PhaseCrashInjector,
    "drop": DropInjector,
    "duplicate": DuplicateInjector,
    "corrupt": CorruptInjector,
}


class AppliedAdversary:
    """The live injectors of one adversary, attached to one system."""

    def __init__(self, spec: AdversarySpec,
                 injectors: List[FaultInjector]) -> None:
        self.spec = spec
        self.injectors = injectors

    @property
    def total_faults(self) -> int:
        return sum(inj.faults_injected for inj in self.injectors)

    def fault_counts(self) -> Dict[str, int]:
        """Faults injected per injector, keyed ``<index>:<kind>``."""
        return {
            f"{i}:{inj.spec.kind}": inj.faults_injected
            for i, inj in enumerate(self.injectors)
        }

    def opportunity_counts(self) -> Dict[str, int]:
        return {
            f"{i}:{inj.spec.kind}": inj.opportunities
            for i, inj in enumerate(self.injectors)
        }

    def uninstall(self) -> None:
        for injector in self.injectors:
            injector.uninstall()


def apply_adversary(system, spec: AdversarySpec) -> AppliedAdversary:
    """Build and install ``spec``'s injectors on a built system.

    Each injector gets its own named random stream
    (``adversary:<kind>:<occurrence>``) derived from the run's root
    seed, so adversarial perturbation is reproducible and independent
    of the network/workload streams.  Streams are keyed by kind and
    occurrence — not list position — so when the shrinker drops one
    injector from a composition, the survivors keep drawing exactly
    the fault streams they drew before.  Must run before the
    simulation starts; phase-crash targets are validated against the
    group-majority requirement here, failing fast like
    ``CrashSchedule.validate``.
    """
    injectors: List[FaultInjector] = []
    occurrences: Dict[str, int] = {}
    for ispec in spec.injectors:
        factory = INJECTOR_TYPES.get(ispec.kind)
        if factory is None:
            raise ValueError(
                f"unknown injector kind {ispec.kind!r}; "
                f"have {sorted(INJECTOR_TYPES)}"
            )
        occurrence = occurrences.get(ispec.kind, 0)
        occurrences[ispec.kind] = occurrence + 1
        rng = system.rng.stream(f"adversary:{ispec.kind}:{occurrence}")
        injectors.append(factory(ispec, system, rng))
    applied = AppliedAdversary(spec, injectors)
    installed: List[FaultInjector] = []
    try:
        for injector in injectors:
            injector.install()
            installed.append(injector)
    except Exception:
        for injector in installed:
            injector.uninstall()
        raise
    return applied
