"""Declarative adversary specifications.

An :class:`AdversarySpec` names a composition of seeded fault injectors
— per-link latency skew, bounded delay/reorder, group-partition latency
spikes, phase-targeted crashes — expressed entirely in plain picklable
data, exactly like :class:`~repro.campaigns.spec.ScenarioSpec`.  The
spec carries no live objects, so the same value can travel three ways:

* as the ``adversary=`` axis of a campaign scenario (by registry name);
* into :func:`repro.adversary.injectors.apply_adversary`, which builds
  the live injectors against a freshly constructed system;
* into a counterexample artifact, serialised via :meth:`to_dict` and
  rebuilt bit-identically by :meth:`from_dict` at replay time.

Every injector draws randomness only from its own named stream of the
run's root seed, so an adversary perturbs the schedule without touching
the workload/latency streams — the property that makes shrinking
meaningful: narrowing an injector's fault window leaves every other
random decision of the run in place.

Fault windows
-------------
Each injector exposes two shrink knobs shared across kinds:
``skip_faults`` ignores the first k fault opportunities and
``max_faults`` caps how many faults fire.  Together they select a
window of the injector's fault stream; the shrinker bisects both ends
to find the minimal set of faults that still breaks the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Injector kinds understood by :mod:`repro.adversary.injectors`.  The
#: lossy kinds (drop/duplicate/corrupt) break the quasi-reliable link
#: axiom on purpose — pair them with ``transport="reliable"`` unless the
#: run is *supposed* to fail (see the injectors module docstring).
INJECTOR_KINDS = ("link-skew", "delay-reorder", "partition-spike",
                  "phase-crash", "drop", "duplicate", "corrupt")


@dataclass(frozen=True)
class InjectorSpec:
    """One seeded fault injector: kind, knobs, and its fault window.

    ``params`` is a tuple of (name, value) pairs (kept as pairs so the
    spec stays hashable-by-value and picklable, like
    ``ScenarioSpec.protocol_kwargs``).  ``skip_faults``/``max_faults``
    bound the injector's fault window; ``max_faults=None`` means
    unlimited.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    skip_faults: int = 0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in INJECTOR_KINDS:
            raise ValueError(
                f"unknown injector kind {self.kind!r}; "
                f"have {list(INJECTOR_KINDS)}"
            )
        if self.skip_faults < 0:
            raise ValueError(f"skip_faults must be >= 0, "
                             f"got {self.skip_faults}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(f"max_faults must be >= 0 or None, "
                             f"got {self.max_faults}")

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def with_window(self, skip_faults: Optional[int] = None,
                    max_faults: Optional[int] = "unchanged",
                    ) -> "InjectorSpec":
        """A copy with one or both fault-window bounds replaced."""
        out = self
        if skip_faults is not None:
            out = replace(out, skip_faults=skip_faults)
        if max_faults != "unchanged":
            out = replace(out, max_faults=max_faults)
        return out

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "params": [[name, value] for name, value in self.params],
            "skip_faults": self.skip_faults,
            "max_faults": self.max_faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InjectorSpec":
        return cls(
            kind=data["kind"],
            params=tuple((name, _revive(value))
                         for name, value in data.get("params", [])),
            skip_faults=data.get("skip_faults", 0),
            max_faults=data.get("max_faults"),
        )


def _revive(value):
    """JSON round-trip turns tuples into lists; turn them back.

    Injector params that are sequences (partition windows, group sets)
    are tuples in the frozen spec, so equality between an original spec
    and its JSON-revived twin holds exactly.
    """
    if isinstance(value, list):
        return tuple(_revive(v) for v in value)
    return value


@dataclass(frozen=True)
class AdversarySpec:
    """A named composition of fault injectors."""

    name: str
    injectors: Tuple[InjectorSpec, ...] = ()

    @property
    def is_benign(self) -> bool:
        return not self.injectors

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "injectors": [spec.to_dict() for spec in self.injectors],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AdversarySpec":
        return cls(
            name=data["name"],
            injectors=tuple(InjectorSpec.from_dict(d)
                            for d in data.get("injectors", [])),
        )

    def describe(self) -> str:
        if self.is_benign:
            return "benign (no injectors)"
        return " + ".join(spec.kind for spec in self.injectors)


# ----------------------------------------------------------------------
# Built-in adversaries
# ----------------------------------------------------------------------
def _builtin_adversaries() -> Dict[str, AdversarySpec]:
    return {
        "none": AdversarySpec(name="none"),
        # Every copy leaving group 0 for another group takes 5x its
        # sampled latency: the slow-replica scenario, stressing the
        # protocols' tolerance to persistently skewed links.
        "link-skew": AdversarySpec(
            name="link-skew",
            injectors=(InjectorSpec(
                kind="link-skew",
                params=(("factor", 5.0), ("src_gid", 0)),
            ),),
        ),
        # ~15% of copies are held back an extra 0.5-5 time units,
        # reordering them against later traffic on the same link —
        # the strongest legal perturbation of a quasi-reliable (non-
        # FIFO) network short of crashing someone.
        "delay-reorder": AdversarySpec(
            name="delay-reorder",
            injectors=(InjectorSpec(
                kind="delay-reorder",
                params=(("probability", 0.15), ("extra_min", 0.5),
                        ("extra_max", 5.0)),
            ),),
        ),
        # Group 0 is latency-partitioned from the rest of the system
        # during [5, 20): copies crossing the boundary take +10 time
        # units, then the spike lifts — the transient-partition pattern
        # quasi-reliability permits (delayed, never lost).
        "partition-spike": AdversarySpec(
            name="partition-spike",
            injectors=(InjectorSpec(
                kind="partition-spike",
                params=(("start", 5.0), ("duration", 15.0),
                        ("spike", 10.0), ("groups", (0,))),
            ),),
        ),
        # Crash process 0 the moment it handles its 3rd consensus
        # message: a phase-boundary crash in the middle of an agreement
        # round, the timing hand-crafted crash schedules rarely hit.
        "phase-crash": AdversarySpec(
            name="phase-crash",
            injectors=(InjectorSpec(
                kind="phase-crash",
                params=(("target", 0), ("phase", "consensus"),
                        ("at_count", 3)),
            ),),
        ),
        # Lossy channels, three severities plus a bursty variant.  All
        # four stop injecting at t=25 (the ``until`` horizon) so a
        # 20-time-unit workload's tail traffic and the transport's
        # retransmissions get a fault-free suffix to stabilize in —
        # the shape the stabilization checker certifies.
        "lossy-light": AdversarySpec(
            name="lossy-light",
            injectors=(
                InjectorSpec(kind="drop",
                             params=(("probability", 0.05),
                                     ("until", 25.0))),
                InjectorSpec(kind="duplicate",
                             params=(("probability", 0.05),
                                     ("until", 25.0))),
                InjectorSpec(kind="corrupt",
                             params=(("probability", 0.02),
                                     ("until", 25.0))),
            ),
        ),
        "lossy-medium": AdversarySpec(
            name="lossy-medium",
            injectors=(
                InjectorSpec(kind="drop",
                             params=(("probability", 0.15),
                                     ("until", 25.0))),
                InjectorSpec(kind="duplicate",
                             params=(("probability", 0.10),
                                     ("until", 25.0))),
                InjectorSpec(kind="corrupt",
                             params=(("probability", 0.05),
                                     ("until", 25.0))),
            ),
        ),
        "lossy-heavy": AdversarySpec(
            name="lossy-heavy",
            injectors=(
                InjectorSpec(kind="drop",
                             params=(("probability", 0.30),
                                     ("until", 25.0))),
                InjectorSpec(kind="duplicate",
                             params=(("probability", 0.10),
                                     ("until", 25.0))),
                InjectorSpec(kind="corrupt",
                             params=(("probability", 0.10),
                                     ("until", 25.0))),
            ),
        ),
        # Gilbert–Elliott bursts: a mostly-clean wire (5% loss) whose
        # links fall into 60%-loss bursts and claw their way out —
        # clustered loss stresses retransmission backoff much harder
        # than the same average rate spread i.i.d.
        "lossy-burst": AdversarySpec(
            name="lossy-burst",
            injectors=(
                InjectorSpec(kind="drop",
                             params=(("probability", 0.05),
                                     ("burst_probability", 0.6),
                                     ("burst_enter", 0.05),
                                     ("burst_exit", 0.2),
                                     ("until", 25.0))),
                InjectorSpec(kind="duplicate",
                             params=(("probability", 0.05),
                                     ("until", 25.0))),
            ),
        ),
        # Everything at once: the torture composition.
        "chaos": AdversarySpec(
            name="chaos",
            injectors=(
                InjectorSpec(
                    kind="delay-reorder",
                    params=(("probability", 0.1), ("extra_min", 0.5),
                            ("extra_max", 4.0)),
                ),
                InjectorSpec(
                    kind="partition-spike",
                    params=(("start", 8.0), ("duration", 10.0),
                            ("spike", 8.0), ("groups", (0,))),
                ),
                InjectorSpec(
                    kind="phase-crash",
                    params=(("target", 0), ("phase", "consensus"),
                            ("at_count", 5)),
                ),
            ),
        ),
    }


ADVERSARIES: Dict[str, AdversarySpec] = _builtin_adversaries()


def get_adversary(name: str) -> AdversarySpec:
    """Look a built-in (or registered) adversary up by name."""
    if name not in ADVERSARIES:
        raise KeyError(
            f"unknown adversary {name!r}; have {sorted(ADVERSARIES)}"
        )
    return ADVERSARIES[name]


def register_adversary(spec: AdversarySpec) -> None:
    """Add a custom adversary to the registry (campaigns resolve by
    name, so registration must happen at import time for pool workers
    — the same rule as ``repro.campaigns.metrics.register_extractor``)."""
    if spec.name in ADVERSARIES:
        raise ValueError(f"adversary {spec.name!r} already registered")
    ADVERSARIES[spec.name] = spec
