"""Public interfaces of the consensus substrate.

The paper (Section 2.2) assumes a **uniform consensus** abstraction
inside every group, with:

* uniform integrity — a decided value was proposed by some process;
* termination — every correct process eventually decides exactly once;
* uniform agreement — if any process decides v, all correct processes
  decide v.

Both A1 and A2 run an ordered *sequence* of consensus instances per
group, where the instance number doubles as the group's logical clock
(A1) or round number (A2).  Instance numbers are monotone but, in A1,
not contiguous: after deciding instance k the group jumps to
``max(decided timestamps, k) + 1``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

# A decision callback: (instance_number, decided_value) -> None.
DecisionHandler = Callable[[int, Any], None]


class ConsensusProtocol:
    """Interface implemented by :class:`repro.consensus.paxos.GroupConsensus`."""

    def propose(self, instance: int, value: Hashable) -> None:
        """Propose ``value`` in ``instance``.

        At most one proposal per instance per process; the value must be
        hashable plain data (tuples of primitives) so it can travel in
        message payloads and be compared for idempotence.
        """
        raise NotImplementedError

    def set_decision_handler(self, handler: DecisionHandler) -> None:
        """Install the (single) callback invoked on each local decision."""
        raise NotImplementedError

    def decided(self, instance: int) -> bool:
        """True when this process has locally decided ``instance``."""
        raise NotImplementedError
