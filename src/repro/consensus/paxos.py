"""Uniform consensus inside a group: single-decree Paxos per instance.

This is the substrate the paper assumes solvable in each group
(Section 2.1).  Design notes:

* **Intra-group only.** Every consensus message stays inside the group,
  so consensus contributes zero inter-group hops to any latency degree —
  exactly the accounting the paper's analysis relies on.
* **Leader-based fast path.**  Ballot ``b`` is owned by the group member
  with rank ``b % d``.  Ballot 0 needs no prepare phase (no smaller
  ballot can exist), so the failure-free flow is: followers forward
  their proposal to the rank-0 member; it sends ``accept``; acceptors
  broadcast ``accepted`` to the whole group; every member decides
  locally once it counts a majority of ``accepted`` for one ballot.
* **Two message delays, O(d²) messages.**  The all-to-all ``accepted``
  broadcast is what the oracle-based consensus of Schiper [11] — the
  one the paper's Figure 1 charges ``2kd(kd-1)`` messages and latency
  degree 2 for — does: everyone learns the decision two delays after
  the proposal, with quadratically many messages.  Both numbers matter:
  Figure 1's message column for [10] (which runs this consensus
  *across* groups) inherits the O((kd)²) term, and its latency column
  inherits the 2.
* **Uniformity.**  A value is decided only after a majority of acceptors
  accepted it, so any later ballot's prepare phase re-discovers it: even
  a process that decides and immediately crashes cannot disagree with
  the survivors.
* **Liveness.**  Undecided proposers retry on a timer: they re-forward
  to the current leader (per the failure detector) or, if they are the
  leader, run a higher ballot.  Timers are armed only while the process
  has an undecided proposal, so a finished group goes quiet — this is
  what lets Algorithm A2 be quiescent (paper Proposition A.9, which
  assumes halting consensus).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.consensus.interfaces import ConsensusProtocol, DecisionHandler
from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.sim.process import Process


@dataclass
class _AcceptorState:
    """Per-instance acceptor bookkeeping."""

    promised: int = -1
    accepted_ballot: int = -1
    accepted_value: Any = None


@dataclass
class _ProposerState:
    """Per-instance proposer bookkeeping (only while leading a ballot)."""

    ballot: int = -1
    promises: Dict[int, tuple] = field(default_factory=dict)
    value: Any = None
    phase: str = "idle"  # idle | prepare | accept


class GroupConsensus(ConsensusProtocol):
    """One process's endpoint of the group-wide Paxos machinery."""

    def __init__(
        self,
        process: Process,
        group_members: List[int],
        detector: FailureDetector,
        retry_timeout: float = 50.0,
        namespace: str = "cons",
    ) -> None:
        """Attach the consensus layer to ``process``.

        Args:
            process: The hosting process.
            group_members: Pids of the process's group (must include it).
            detector: Failure detector used for leader election.
            retry_timeout: Virtual-time gap between liveness retries.
            namespace: Message-kind prefix; lets several independent
                consensus stacks coexist on one process.
        """
        if process.pid not in group_members:
            raise ValueError("process must belong to its own group")
        self.process = process
        self.members = sorted(group_members)
        self.detector = detector
        self.retry_timeout = retry_timeout
        self.ns = namespace
        self._rank = {pid: i for i, pid in enumerate(self.members)}
        self._majority = len(self.members) // 2 + 1

        self._acceptors: Dict[int, _AcceptorState] = {}
        self._proposers: Dict[int, _ProposerState] = {}
        # (instance, ballot) -> set of acceptors whose ``accepted`` we saw.
        self._accepted_tally: Dict[tuple, Set[int]] = {}
        self._candidates: Dict[int, Any] = {}  # my own / forwarded values
        self._proposed: Set[int] = set()  # instances I called propose() on
        self._decisions: Dict[int, Any] = {}
        self._max_ballot_seen: Dict[int, int] = {}
        self._timer_armed: Set[int] = set()
        self._timer_events: Dict[int, object] = {}
        self._handler: Optional[DecisionHandler] = None

        for suffix in (
            "forward", "prepare", "promise", "accept", "accepted", "nack",
            "decide",
        ):
            process.register_handler(f"{self.ns}.{suffix}",
                                     getattr(self, f"_on_{suffix}"))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def set_decision_handler(self, handler: DecisionHandler) -> None:
        if self._handler is not None:
            raise ValueError("decision handler already set")
        self._handler = handler

    def decided(self, instance: int) -> bool:
        return instance in self._decisions

    def decision(self, instance: int) -> Any:
        """The locally known decision of ``instance`` (must be decided)."""
        return self._decisions[instance]

    def propose(self, instance: int, value: Hashable) -> None:
        if instance in self._proposed:
            raise ValueError(
                f"process {self.process.pid} proposed twice in instance {instance}"
            )
        self._proposed.add(instance)
        if instance in self._decisions:
            return
        self._candidates.setdefault(instance, value)
        self._attempt(instance)
        self._arm_timer(instance)

    # ------------------------------------------------------------------
    # Leader / liveness machinery
    # ------------------------------------------------------------------
    def _current_leader(self) -> Optional[int]:
        return self.detector.leader(self.process.pid, self.members)

    def _attempt(self, instance: int) -> None:
        """Push ``instance`` forward: lead it or forward our value."""
        if instance in self._decisions or self.process.crashed:
            return
        leader = self._current_leader()
        if leader is None:
            return  # no candidate leader; retry later
        value = self._candidates.get(instance)
        if leader != self.process.pid:
            if value is not None:
                self.process.send(
                    leader, f"{self.ns}.forward",
                    {"k": instance, "value": value},
                )
            return
        self._lead(instance)

    def _lead(self, instance: int) -> None:
        """Start (or escalate) a ballot we own for ``instance``."""
        state = self._proposers.setdefault(instance, _ProposerState())
        if state.phase != "idle":
            return  # a ballot of ours is already in flight
        rank = self._rank[self.process.pid]
        d = len(self.members)
        floor = max(self._max_ballot_seen.get(instance, -1), state.ballot)
        ballot = rank
        while ballot <= floor:
            ballot += d
        if ballot == 0:
            # Ballot 0 is safe without a prepare phase: no acceptor can
            # have accepted anything in a smaller ballot.
            value = self._candidates.get(instance)
            if value is None:
                return  # nothing to propose yet; wait for a forward
            state.ballot = ballot
            state.promises = {}
            state.accepted_from = set()
            state.phase = "accept"
            state.value = value
            self._broadcast(f"{self.ns}.accept",
                            {"k": instance, "b": ballot, "value": value})
        else:
            state.ballot = ballot
            state.promises = {}
            state.accepted_from = set()
            state.value = None
            state.phase = "prepare"
            self._broadcast(f"{self.ns}.prepare", {"k": instance, "b": ballot})

    def _arm_timer(self, instance: int) -> None:
        if instance in self._timer_armed or instance in self._decisions:
            return
        self._timer_armed.add(instance)
        self._timer_events[instance] = self.process.sim.schedule(
            self.retry_timeout,
            lambda: self._on_timer(instance),
            label=f"{self.ns}.retry",
        )

    def _on_timer(self, instance: int) -> None:
        self._timer_armed.discard(instance)
        self._timer_events.pop(instance, None)
        if instance in self._decisions or self.process.crashed:
            return
        self._attempt(instance)
        self._arm_timer(instance)

    def _broadcast(self, kind: str, payload: dict) -> None:
        self.process.send_many(self.members, kind, payload)

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _on_forward(self, msg: Message) -> None:
        instance, value = msg.payload["k"], msg.payload["value"]
        if instance in self._decisions:
            # Help a lagging peer instead of re-running the instance.
            self.process.send(
                msg.src, f"{self.ns}.decide",
                {"k": instance, "value": self._decisions[instance]},
            )
            return
        self._candidates.setdefault(instance, value)
        state = self._proposers.get(instance)
        if state is None or state.phase == "idle":
            self._attempt(instance)
        elif state.phase == "prepare" and state.value is None:
            # A value arrived while we were collecting promises; nothing
            # to do — _maybe_start_accept will pick it up.
            self._maybe_start_accept(instance, state)

    def _on_prepare(self, msg: Message) -> None:
        instance, ballot = msg.payload["k"], msg.payload["b"]
        self._note_ballot(instance, ballot)
        acc = self._acceptors.setdefault(instance, _AcceptorState())
        if ballot > acc.promised:
            acc.promised = ballot
            self.process.send(
                msg.src, f"{self.ns}.promise",
                {
                    "k": instance,
                    "b": ballot,
                    "ab": acc.accepted_ballot,
                    "av": acc.accepted_value,
                },
            )
        else:
            self.process.send(
                msg.src, f"{self.ns}.nack",
                {"k": instance, "b": ballot, "promised": acc.promised},
            )

    def _on_promise(self, msg: Message) -> None:
        instance, ballot = msg.payload["k"], msg.payload["b"]
        state = self._proposers.get(instance)
        if state is None or state.phase != "prepare" or state.ballot != ballot:
            return
        state.promises[msg.src] = (msg.payload["ab"], msg.payload["av"])
        self._maybe_start_accept(instance, state)

    def _maybe_start_accept(self, instance: int, state: _ProposerState) -> None:
        if len(state.promises) < self._majority:
            return
        # Choose the value of the highest accepted ballot, else our own.
        best_ballot, best_value = -1, None
        for accepted_ballot, accepted_value in state.promises.values():
            if accepted_ballot > best_ballot:
                best_ballot, best_value = accepted_ballot, accepted_value
        if best_ballot >= 0:
            value = best_value
        else:
            value = self._candidates.get(instance)
            if value is None:
                return  # must wait for a candidate (own propose or forward)
        state.phase = "accept"
        state.value = value
        self._broadcast(
            f"{self.ns}.accept",
            {"k": instance, "b": state.ballot, "value": value},
        )

    def _on_accept(self, msg: Message) -> None:
        instance, ballot = msg.payload["k"], msg.payload["b"]
        value = msg.payload["value"]
        self._note_ballot(instance, ballot)
        acc = self._acceptors.setdefault(instance, _AcceptorState())
        if ballot >= acc.promised:
            acc.promised = ballot
            acc.accepted_ballot = ballot
            acc.accepted_value = value
            # All-to-all learning (Schiper [11] style): every member
            # tallies accepted votes and decides two delays after the
            # proposal, at O(d²) messages per instance.
            self._broadcast(
                f"{self.ns}.accepted",
                {"k": instance, "b": ballot, "value": value},
            )
        else:
            self.process.send(
                msg.src, f"{self.ns}.nack",
                {"k": instance, "b": ballot, "promised": acc.promised},
            )

    def _on_accepted(self, msg: Message) -> None:
        instance, ballot = msg.payload["k"], msg.payload["b"]
        if instance in self._decisions:
            return
        voters = self._accepted_tally.setdefault((instance, ballot), set())
        voters.add(msg.src)
        if len(voters) >= self._majority:
            self._decide(instance, msg.payload["value"])

    def _on_nack(self, msg: Message) -> None:
        instance = msg.payload["k"]
        self._note_ballot(instance, msg.payload["promised"])
        state = self._proposers.get(instance)
        if state is None or state.phase == "idle":
            return
        if msg.payload["b"] != state.ballot:
            return
        # Our ballot lost; retreat and let the retry timer escalate.
        state.phase = "idle"
        self._arm_timer(instance)

    def _on_decide(self, msg: Message) -> None:
        self._decide(msg.payload["k"], msg.payload["value"])

    # ------------------------------------------------------------------
    def _note_ballot(self, instance: int, ballot: int) -> None:
        seen = self._max_ballot_seen.get(instance, -1)
        if ballot > seen:
            self._max_ballot_seen[instance] = ballot

    def _decide(self, instance: int, value: Any) -> None:
        if instance in self._decisions:
            return
        self._decisions[instance] = value
        self._proposers.pop(instance, None)
        self._accepted_tally = {
            key: voters for key, voters in self._accepted_tally.items()
            if key[0] != instance
        }
        # The retry timer would fire, see the decision, and do nothing;
        # cancelling it keeps the queue free of dead-air events and lets
        # a finished group quiesce retry_timeout earlier.
        self._timer_armed.discard(instance)
        timer = self._timer_events.pop(instance, None)
        if timer is not None:
            timer.cancel()
        if self._handler is not None:
            self._handler(instance, value)
