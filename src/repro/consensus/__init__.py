"""Uniform consensus inside each group (Paxos-based substrate)."""

from repro.consensus.interfaces import ConsensusProtocol
from repro.consensus.paxos import GroupConsensus
from repro.consensus.sequence import ConsensusSequence

__all__ = ["ConsensusProtocol", "GroupConsensus", "ConsensusSequence"]
