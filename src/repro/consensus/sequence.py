"""Ordered delivery of a group's sequence of consensus decisions.

Both of the paper's algorithms drive one consensus instance at a time per
group: the instance number is the group clock ``K`` (Algorithm A1) or the
round number (Algorithm A2).  Group members advance ``K`` in lock step
(paper Lemma A.1), but over the network a process can *learn* decisions
out of order — e.g. receive the ``decide`` of instance 7 while still
waiting for instance 3.

:class:`ConsensusSequence` buffers raw decisions and releases them to the
client exactly when the client's current instance number matches,
re-creating the pseudocode's ``When Decided(K, msgSet')`` guard.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable

from repro.consensus.interfaces import ConsensusProtocol

# Client callback: (instance_number, decided_value) -> None.  The client
# must call :meth:`ConsensusSequence.advance_to` with its next instance
# number before the callback returns.
OrderedDecisionHandler = Callable[[int, Any], None]


class ConsensusSequence:
    """Per-process adapter turning raw decisions into an ordered stream."""

    def __init__(
        self,
        consensus: ConsensusProtocol,
        on_decide: OrderedDecisionHandler,
        first_instance: int = 1,
    ) -> None:
        self.consensus = consensus
        self.on_decide = on_decide
        self.current = first_instance
        self._buffer: Dict[int, Any] = {}
        self._flushing = False
        consensus.set_decision_handler(self._on_raw_decision)

    # ------------------------------------------------------------------
    def propose(self, instance: int, value: Hashable) -> None:
        """Propose in ``instance`` (must be the client's current one)."""
        self.consensus.propose(instance, value)

    def advance_to(self, instance: int) -> None:
        """Move the cursor; called by the client inside its callback."""
        if instance <= self.current:
            raise ValueError(
                f"instance cursor must move forward "
                f"({self.current} -> {instance})"
            )
        self.current = instance
        if not self._flushing:
            self._flush()

    # ------------------------------------------------------------------
    def _on_raw_decision(self, instance: int, value: Any) -> None:
        if instance < self.current:
            return  # stale duplicate
        self._buffer[instance] = value
        if not self._flushing:
            self._flush()

    def _flush(self) -> None:
        """Release buffered decisions while they match the cursor.

        The client's callback advances the cursor synchronously (to
        ``max(ts)+1`` in A1, ``K+1`` in A2), so the loop naturally walks
        the group's — possibly non-contiguous — instance sequence.
        """
        self._flushing = True
        try:
            while self.current in self._buffer:
                instance = self.current
                value = self._buffer.pop(instance)
                self.on_decide(instance, value)
                if self.current == instance:
                    # Client did not advance; stop instead of spinning.
                    break
        finally:
            self._flushing = False
