"""Streaming one-copy-serializability checker for the store.

One-shot transactions over atomic multicast are serialisable by
construction *if the protocol keeps its promises*; this checker refuses
to take that on faith.  It verifies, from observed behaviour only:

1. **replica consistency** (streaming) — within each partition, every
   replica's execution log must be a prefix of one per-group canonical
   order.  This is the within-group reduction of PR 3's streaming
   prefix-order checker, re-run at the transaction level: it folds over
   individual deliveries through :meth:`on_delivery`, so it can run
   incrementally via ``System.add_delivery_hook`` and flag the exact
   delivery that diverges;
2. **atomicity** (finalize) — a transaction executed by any partition
   must be executed by every destination partition that still has a
   correct replica (no partial commits);
3. **global embedding** (finalize) — the per-partition canonical
   orders of *data* transactions, read as precedence constraints, must
   admit a single global serial order (Kahn's topological sort; a
   cycle is a serializability violation);
4. **one-copy equivalence** (finalize) — replaying every transaction
   in that global order on a *single-copy* store must reproduce both
   every read value and cas outcome each replica observed at execution
   time, and every correct replica's final partition state.

Steps 1–3 establish that some serial order exists; step 4 establishes
that the distributed execution is indistinguishable from executing it
on one copy — which is the definition of one-copy serializability.

**Epochs.**  Elastic scenarios (:mod:`repro.reconfig`) interleave
reconfig (R) and handoff (H) control messages with data transactions,
so the post-hoc entry point :func:`check_serializability` folds over
per-replica *execution journals* (execution can lag delivery behind
service queues and migration stalls), with the ``@mid`` control
markers included as order items.  The controls do not join the global
precedence graph — a control may legitimately overtake a stalled data
head, so its journal adjacency with unrelated data carries no
semantics — instead each group's journal is *walked* deterministically
(epoch-0 map + the group's own R/H sequence) to recompute which ops
each group should have executed under which epoch.  The one-copy
replay then executes exactly those ops, which makes fenced
(``WrongEpoch``) ops skip on the single copy precisely where they were
skipped in the run.  With no control messages the walk is the constant
epoch-0 map and every rule degenerates to the static behaviour above.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.core.interfaces import AppMessage
from repro.net.topology import Topology
from repro.reconfig.txn import Handoff, ReconfigOp, is_control
from repro.store.transaction import Transaction, execute


class SerializabilityViolation(AssertionError):
    """The store's execution does not embed into one serial order.

    Mirrors :class:`~repro.checkers.properties.PropertyViolation`:
    ``context`` carries machine-readable details (kind, pid, txn, key,
    position) for the adversary explorer's structured records.
    """

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.context: Dict[str, object] = context


class _GroupWalk:
    """The deterministic per-group epoch walk, and what it derives.

    Walking one group's canonical journal against the epoch-0 map
    recomputes, position by position, the map view every correct
    replica of that group must have held — and therefore which ops it
    must have executed (``facts``), which reconfigs its CAS let proceed
    (``proceed``), and which keys were still mid-migration when the run
    ended (``pending_end``).
    """

    def __init__(self) -> None:
        #: (txn id, key) -> did the responsible group execute the ops?
        self.facts: Dict[Tuple[str, str], bool] = {}
        #: reconfig id -> the source CAS decision.
        self.proceed: Dict[str, bool] = {}
        #: reconfig id -> its op (for the moving key set).
        self.ops: Dict[str, ReconfigOp] = {}
        #: reconfig id -> data txns before R in the source's journal
        #: (the one-copy replay captures the handoff's expected
        #: snapshot once these have replayed).
        self.r_preds: Dict[str, Set[str]] = {}
        #: reconfig id -> {moving key -> the earlier reconfig whose
        #: handoff imported that key into this move's source}.  A key's
        #: value provenance crosses groups with it, so the snapshot
        #: capture must also wait for the pre-move data of every former
        #: owner on the key's import chain.
        self.key_imports: Dict[str, Dict[str, str]] = {}
        #: gid -> the group's final map view.
        self.views: Dict[int, object] = {}
        #: gid -> keys still awaiting their handoff at the end.
        self.pending_end: Dict[int, Set[str]] = {}


class StreamingSerializabilityChecker:
    """Incremental collector + final one-copy verifier.

    Feed every A-Deliver event through :meth:`on_delivery` (directly,
    or via ``system.add_delivery_hook``), or fold finished execution
    journals in with :meth:`ingest_journals`; replica-consistency
    violations raise at the offending item.  After the run,
    :meth:`finalize` runs the atomicity, embedding and replay checks
    against the finished cluster.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._group_order: Dict[int, List[str]] = {}
        self._positions: Dict[int, int] = {}
        self._txns: Dict[str, object] = {}
        self.deliveries = 0
        #: Filled by finalize: reconfig id -> {"proceeded": bool,
        #: "snapshot": ((key, value), ...)} — the authoritative CAS
        #: decision and the one-copy source state at each R.  The
        #: reconfig checker compares the actual handoffs against this.
        self.reconfig_replay: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Streaming half
    # ------------------------------------------------------------------
    def on_delivery(self, pid: int, msg: AppMessage) -> None:
        """Fold one execution event into the per-group canonical orders.

        Control messages (reconfig/handoff) are skipped here: the
        delivery stream interleaves them with data, but their order
        positions are only meaningful in the execution journals, which
        :func:`check_serializability` folds post-hoc.
        """
        if is_control(msg.payload):
            return
        txn = Transaction.from_payload(msg.payload)
        self._ingest(pid, txn.txn_id, txn)
        self.deliveries += 1

    def ingest_journals(self, cluster) -> None:
        """Fold every replica's execution journal (data + controls)."""
        for pid in sorted(cluster.stores):
            store = cluster.stores[pid]
            for item_id, item in zip(store.applied, store.applied_txns):
                self._ingest(pid, item_id, item)

    def _ingest(self, pid: int, item_id: str, item) -> None:
        if item_id not in self._txns:
            self._txns[item_id] = item
        gid = self._topology.group_of(pid)
        order = self._group_order.setdefault(gid, [])
        position = self._positions.get(pid, 0)
        if position < len(order):
            if order[position] != item_id:
                raise SerializabilityViolation(
                    f"replica {pid} executed {item_id} at position "
                    f"{position}, but group {gid}'s canonical order has "
                    f"{order[position]} there — partition replicas "
                    f"disagree on their serial order",
                    kind="replica_divergence", pid=pid, gid=gid,
                    txn=item_id, position=position,
                    expected=order[position],
                )
        else:
            order.append(item_id)
        self._positions[pid] = position + 1

    def group_orders(self) -> Dict[int, Tuple[str, ...]]:
        """Per-group canonical execution orders observed so far."""
        return {gid: tuple(order)
                for gid, order in self._group_order.items()}

    # ------------------------------------------------------------------
    # Final half
    # ------------------------------------------------------------------
    def finalize(self, cluster) -> Tuple[str, ...]:
        """Run atomicity + embedding + one-copy replay; returns the
        global serial order (data transactions) on success."""
        self._check_atomicity(cluster)
        order = self._global_order()
        walk = self._walk_groups(cluster)
        self._replay_and_compare(cluster, order, walk)
        return order

    def _correct_members(self, cluster, gid: int) -> List[int]:
        network = cluster.system.network
        return [pid for pid in self._topology.members(gid)
                if not network.process(pid).crashed]

    def _stalled_in(self, cluster, gid: int) -> Set[str]:
        """Data txns still queued behind a migration at group ``gid``."""
        stalled: Set[str] = set()
        for pid in self._correct_members(cluster, gid):
            stalled.update(cluster.stores[pid].stalled_txn_ids())
        return stalled

    def _check_atomicity(self, cluster) -> None:
        cast_map = cluster.system.log.cast_map
        executed_in: Dict[str, Set[int]] = {}
        for gid, order in self._group_order.items():
            for item_id in order:
                executed_in.setdefault(item_id, set()).add(gid)
        for item_id, gids in sorted(executed_in.items()):
            mid = item_id[1:] if item_id.startswith("@") else item_id
            cast = cast_map.get(mid)
            if cast is None:
                raise SerializabilityViolation(
                    f"transaction {item_id} was executed but never "
                    f"submitted",
                    kind="phantom_txn", txn=item_id,
                )
            for gid in cast.dest_groups:
                if gid in gids:
                    continue
                if not self._correct_members(cluster, gid):
                    continue  # the whole partition crashed; excusable
                if (not item_id.startswith("@")
                        and item_id in self._stalled_in(cluster, gid)):
                    # Queued behind a migration whose handoff never
                    # landed (e.g. the designated caster crashed): the
                    # txn is uncommitted, not partially committed.
                    continue
                raise SerializabilityViolation(
                    f"partial commit: {item_id} was executed by "
                    f"partition(s) {sorted(gids)} but destination "
                    f"partition {gid} (with correct replicas) never "
                    f"executed it",
                    kind="partial_commit", txn=item_id, gid=gid,
                    executed_in=sorted(gids),
                )

    def _global_order(self) -> Tuple[str, ...]:
        """Kahn's topological sort over the per-group data chains.

        Only data transactions join the graph: each group's journal
        restricted to data is its serialization commitment (data never
        reorders against data), while a control's position relative to
        *unrelated* data is an artifact of the stall-overtake rule and
        must not constrain the global order.  Ties (transactions with
        no constraint between them) break by txn id, so the returned
        order is deterministic.
        """
        data_ids = {t for t, item in self._txns.items()
                    if isinstance(item, Transaction)}
        successors: Dict[str, Set[str]] = {t: set() for t in data_ids}
        indegree: Dict[str, int] = {t: 0 for t in data_ids}
        for order in self._group_order.values():
            chain = [t for t in order if t in data_ids]
            for earlier, later in zip(chain, chain[1:]):
                if later not in successors[earlier]:
                    successors[earlier].add(later)
                    indegree[later] += 1
        ready = [t for t, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        serial: List[str] = []
        while ready:
            txn_id = heapq.heappop(ready)
            serial.append(txn_id)
            for nxt in successors[txn_id]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    heapq.heappush(ready, nxt)
        if len(serial) != len(data_ids):
            stuck = sorted(t for t, deg in indegree.items() if deg > 0)
            raise SerializabilityViolation(
                f"no global serial order embeds the per-partition logs: "
                f"precedence cycle through {stuck[:6]}"
                + ("..." if len(stuck) > 6 else ""),
                kind="cycle", transactions=stuck,
            )
        return tuple(serial)

    def _walk_groups(self, cluster) -> _GroupWalk:
        """Re-derive every group's epoch timeline from its journal.

        The walk mirrors the replica's control logic exactly — source
        CAS, shed, tentative flip, handoff settle/unwind — but runs on
        the *canonical journal* against the pristine epoch-0 map, so
        its outputs are a function of the journals alone, independent
        of any replica's in-memory state.
        """
        walk = _GroupWalk()
        for gid in sorted(self._group_order):
            order = self._group_order[gid]
            view = cluster.partition_map.clone()
            pending: Dict[str, str] = {}
            shed: Dict[str, str] = {}
            pend_meta: Dict[str, dict] = {}
            settled: Set[str] = set()
            seen_data: List[str] = []
            imported: Dict[str, str] = {}
            for item_id in order:
                item = self._txns[item_id]
                if isinstance(item, ReconfigOp):
                    rid = item.reconfig_id
                    walk.ops[rid] = item
                    if gid == item.src:
                        ok = all(
                            view.group_of(k) == item.src
                            and k not in pending and k not in shed
                            for k in item.keys
                        )
                        walk.proceed[rid] = ok
                        if ok:
                            walk.r_preds[rid] = set(seen_data)
                            walk.key_imports[rid] = {
                                k: imported[k] for k in item.keys
                                if k in imported
                            }
                            for k in item.keys:
                                shed[k] = rid
                            view.apply_move(item.keys, item.dst)
                        else:
                            settled.add(rid)
                    elif gid == item.dst:
                        if rid in settled:
                            continue
                        pend_meta[rid] = view.assignments_of(item.keys)
                        for k in item.keys:
                            pending[k] = rid
                        view.apply_move(item.keys, item.dst)
                elif isinstance(item, Handoff):
                    rid = item.reconfig_id
                    if rid in settled and rid not in pend_meta:
                        continue  # duplicate handoff
                    if gid == item.dst:
                        prev = pend_meta.pop(rid, None)
                        if item.aborted:
                            if prev is not None:
                                view.apply_assignments(prev)
                                for k in item.keys:
                                    if pending.get(k) == rid:
                                        del pending[k]
                        else:
                            if prev is None:
                                view.apply_move(item.keys, item.dst)
                            for k in item.keys:
                                if pending.get(k) == rid:
                                    del pending[k]
                                shed.pop(k, None)
                                imported[k] = rid
                    settled.add(rid)
                else:
                    txn = item
                    seen_data.append(txn.txn_id)
                    for op in txn.ops:
                        key = op[1]
                        if txn.routes is None:
                            if view.group_of(key) == gid:
                                walk.facts[(txn.txn_id, key)] = True
                        elif txn.route_of(key) == gid:
                            walk.facts[(txn.txn_id, key)] = (
                                view.group_of(key) == gid
                                and key not in pending
                            )
            walk.views[gid] = view
            walk.pending_end[gid] = set(pending)
        return walk

    def _replay_and_compare(self, cluster, order: Tuple[str, ...],
                            walk: _GroupWalk) -> None:
        static_map = cluster.partition_map
        single_copy: Dict[str, object] = {}
        for rid, ok in walk.proceed.items():
            if not ok:
                self.reconfig_replay[rid] = {
                    "proceeded": False, "snapshot": (),
                }
        def closure(rid: str, key: str) -> Set[str]:
            # Everything the one-copy replay must have executed before
            # `key`'s value at `rid`'s R is settled: the data preceding
            # R in the source's journal, plus — recursively, through
            # the handoff that imported the key into the source — the
            # pre-move data of every former owner on the key's import
            # chain.  Every executed write to the key before the move
            # is in one of those prefixes, and every post-move writer
            # carries fence legs at each former owner (its first route
            # for the key is the epoch-0 owner, and each bounce walks
            # one hop down the chain), so it orders after all of them.
            memo_key = (rid, key)
            if memo_key in closure_memo:
                return closure_memo[memo_key]
            preds = set(walk.r_preds.get(rid, ()))
            importer = walk.key_imports.get(rid, {}).get(key)
            if importer is not None:
                preds |= closure(importer, key)
            closure_memo[memo_key] = preds
            return preds

        closure_memo: Dict[Tuple[str, str], Set[str]] = {}
        remaining: Dict[Tuple[str, str], Set[str]] = {}
        captured: Dict[str, Dict[str, object]] = {}
        for rid in walk.r_preds:
            captured[rid] = {}
            for k in walk.ops[rid].keys:
                remaining[(rid, k)] = set(closure(rid, k))

        def capture_ready() -> None:
            for rid, k in [ck for ck, preds in remaining.items()
                           if not preds]:
                if k in single_copy:
                    captured[rid][k] = single_copy[k]
                del remaining[(rid, k)]

        capture_ready()
        for txn_id in order:
            txn = self._txns[txn_id]
            expected = execute(
                txn, single_copy,
                owned=lambda key, t=txn: walk.facts.get(
                    (t.txn_id, key), False),
            )
            for preds in remaining.values():
                preds.discard(txn_id)
            capture_ready()
            for index, op in enumerate(txn.ops):
                key = op[1]
                gid = (txn.route_of(key) if txn.routes is not None
                       else static_map.group_of(key))
                for pid in self._correct_members(cluster, gid):
                    observed = cluster.stores[pid].effects_of(txn.txn_id)
                    if observed is None:
                        continue  # atomicity already vouched coverage
                    # Ops the replay fenced out (stale route) have no
                    # entry in `expected`; the replica must have fenced
                    # them identically, so both sides read None.
                    if op[0] == "get":
                        want = expected.reads.get(index)
                        got = observed.reads.get(index)
                        if got != want:
                            raise SerializabilityViolation(
                                f"read divergence: replica {pid} served "
                                f"{txn.txn_id} op#{index} get({key!r}) = "
                                f"{got!r}, but the one-copy replay "
                                f"reads {want!r}",
                                kind="read_divergence", pid=pid,
                                txn=txn.txn_id, key=key, op_index=index,
                            )
                    elif op[0] == "cas":
                        want = expected.cas_applied.get(index)
                        got = observed.cas_applied.get(index)
                        if got != want:
                            raise SerializabilityViolation(
                                f"cas divergence: replica {pid} decided "
                                f"{txn.txn_id} op#{index} cas({key!r}) "
                                f"applied={got!r}, one-copy replay "
                                f"says {want!r}",
                                kind="cas_divergence", pid=pid,
                                txn=txn.txn_id, key=key, op_index=index,
                            )
        for rid, values in captured.items():
            self.reconfig_replay[rid] = {
                "proceeded": True,
                "snapshot": tuple(
                    (k, values[k]) for k in sorted(walk.ops[rid].keys)
                    if k in values),
            }
        # Final states: every correct replica must hold exactly the
        # one-copy state projected onto its partition, per its group's
        # *final* epoch view.  Keys still mid-migration at the end of
        # the run — shed by the source, never installed at the target
        # because the handoff was lost to a crash — are excluded: their
        # loss shows up as uncommitted transactions, not divergence.
        for gid in self._topology.group_ids:
            view = walk.views.get(gid, static_map)
            skip = walk.pending_end.get(gid, set())
            expected_state = {
                key: value for key, value in single_copy.items()
                if view.group_of(key) == gid and key not in skip
            }
            for pid in self._correct_members(cluster, gid):
                got_state = {k: v
                             for k, v in cluster.stores[pid].state.items()
                             if k not in skip}
                if got_state == expected_state:
                    continue
                diverging = sorted(
                    key for key in set(got_state) | set(expected_state)
                    if got_state.get(key) != expected_state.get(key)
                )
                key = diverging[0]
                raise SerializabilityViolation(
                    f"state divergence: replica {pid} (partition {gid}) "
                    f"holds {key!r} = {got_state.get(key)!r}, one-copy "
                    f"replay ends with {expected_state.get(key)!r} "
                    f"({len(diverging)} diverging key(s))",
                    kind="state_divergence", pid=pid, gid=gid, key=key,
                )


def check_serializability(cluster) -> Tuple[str, ...]:
    """Post-hoc one-copy-serializability check over a finished run.

    Folds the per-replica execution journals through the streaming core
    (for static scenarios these equal the delivery logs; for elastic
    ones they additionally carry the reconfig/handoff markers and the
    effects of migration stalls) and runs the final checks; returns the
    global serial order on success.
    """
    checker = StreamingSerializabilityChecker(cluster.system.topology)
    checker.ingest_journals(cluster)
    return checker.finalize(cluster)
