"""Streaming one-copy-serializability checker for the store.

One-shot transactions over atomic multicast are serialisable by
construction *if the protocol keeps its promises*; this checker refuses
to take that on faith.  It verifies, from observed behaviour only:

1. **replica consistency** (streaming) — within each partition, every
   replica's execution log must be a prefix of one per-group canonical
   order.  This is the within-group reduction of PR 3's streaming
   prefix-order checker, re-run at the transaction level: it folds over
   individual deliveries through :meth:`on_delivery`, so it can run
   incrementally via ``System.add_delivery_hook`` and flag the exact
   delivery that diverges;
2. **atomicity** (finalize) — a transaction executed by any partition
   must be executed by every destination partition that still has a
   correct replica (no partial commits);
3. **global embedding** (finalize) — the per-partition canonical
   orders, read as precedence constraints, must admit a single global
   serial order (Kahn's topological sort; a cycle is a serializability
   violation);
4. **one-copy equivalence** (finalize) — replaying every transaction
   in that global order on a *single-copy* store must reproduce both
   every read value and cas outcome each replica observed at execution
   time, and every correct replica's final partition state.

Steps 1–3 establish that some serial order exists; step 4 establishes
that the distributed execution is indistinguishable from executing it
on one copy — which is the definition of one-copy serializability.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.core.interfaces import AppMessage
from repro.net.topology import Topology
from repro.store.transaction import Transaction, execute


class SerializabilityViolation(AssertionError):
    """The store's execution does not embed into one serial order.

    Mirrors :class:`~repro.checkers.properties.PropertyViolation`:
    ``context`` carries machine-readable details (kind, pid, txn, key,
    position) for the adversary explorer's structured records.
    """

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.context: Dict[str, object] = context


class StreamingSerializabilityChecker:
    """Incremental collector + final one-copy verifier.

    Feed every A-Deliver event through :meth:`on_delivery` (directly,
    or via ``system.add_delivery_hook``); replica-consistency
    violations raise at the offending delivery.  After the run,
    :meth:`finalize` runs the atomicity, embedding and replay checks
    against the finished cluster.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._group_order: Dict[int, List[str]] = {}
        self._positions: Dict[int, int] = {}
        self._txns: Dict[str, Transaction] = {}
        self.deliveries = 0

    # ------------------------------------------------------------------
    # Streaming half
    # ------------------------------------------------------------------
    def on_delivery(self, pid: int, msg: AppMessage) -> None:
        """Fold one execution event into the per-group canonical orders."""
        txn = Transaction.from_payload(msg.payload)
        self._txns.setdefault(txn.txn_id, txn)
        gid = self._topology.group_of(pid)
        order = self._group_order.setdefault(gid, [])
        position = self._positions.get(pid, 0)
        if position < len(order):
            if order[position] != txn.txn_id:
                raise SerializabilityViolation(
                    f"replica {pid} executed {txn.txn_id} at position "
                    f"{position}, but group {gid}'s canonical order has "
                    f"{order[position]} there — partition replicas "
                    f"disagree on their serial order",
                    kind="replica_divergence", pid=pid, gid=gid,
                    txn=txn.txn_id, position=position,
                    expected=order[position],
                )
        else:
            order.append(txn.txn_id)
        self._positions[pid] = position + 1
        self.deliveries += 1

    def group_orders(self) -> Dict[int, Tuple[str, ...]]:
        """Per-group canonical execution orders observed so far."""
        return {gid: tuple(order)
                for gid, order in self._group_order.items()}

    # ------------------------------------------------------------------
    # Final half
    # ------------------------------------------------------------------
    def finalize(self, cluster) -> Tuple[str, ...]:
        """Run atomicity + embedding + one-copy replay; returns the
        global serial order on success."""
        self._check_atomicity(cluster)
        order = self._global_order()
        self._replay_and_compare(cluster, order)
        return order

    def _correct_members(self, cluster, gid: int) -> List[int]:
        network = cluster.system.network
        return [pid for pid in self._topology.members(gid)
                if not network.process(pid).crashed]

    def _check_atomicity(self, cluster) -> None:
        cast_map = cluster.system.log.cast_map
        executed_in: Dict[str, Set[int]] = {}
        for gid, order in self._group_order.items():
            for txn_id in order:
                executed_in.setdefault(txn_id, set()).add(gid)
        for txn_id, gids in sorted(executed_in.items()):
            cast = cast_map.get(txn_id)
            if cast is None:
                raise SerializabilityViolation(
                    f"transaction {txn_id} was executed but never "
                    f"submitted",
                    kind="phantom_txn", txn=txn_id,
                )
            for gid in cast.dest_groups:
                if gid in gids:
                    continue
                if not self._correct_members(cluster, gid):
                    continue  # the whole partition crashed; excusable
                raise SerializabilityViolation(
                    f"partial commit: {txn_id} was executed by "
                    f"partition(s) {sorted(gids)} but destination "
                    f"partition {gid} (with correct replicas) never "
                    f"executed it",
                    kind="partial_commit", txn=txn_id, gid=gid,
                    executed_in=sorted(gids),
                )

    def _global_order(self) -> Tuple[str, ...]:
        """Kahn's topological sort over the per-group precedence chains.

        Ties (transactions with no constraint between them) break by
        txn id, so the returned order is deterministic.
        """
        successors: Dict[str, Set[str]] = {t: set() for t in self._txns}
        indegree: Dict[str, int] = {t: 0 for t in self._txns}
        for order in self._group_order.values():
            for earlier, later in zip(order, order[1:]):
                if later not in successors[earlier]:
                    successors[earlier].add(later)
                    indegree[later] += 1
        ready = [t for t, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        serial: List[str] = []
        while ready:
            txn_id = heapq.heappop(ready)
            serial.append(txn_id)
            for nxt in successors[txn_id]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    heapq.heappush(ready, nxt)
        if len(serial) != len(self._txns):
            stuck = sorted(t for t, deg in indegree.items() if deg > 0)
            raise SerializabilityViolation(
                f"no global serial order embeds the per-partition logs: "
                f"precedence cycle through {stuck[:6]}"
                + ("..." if len(stuck) > 6 else ""),
                kind="cycle", transactions=stuck,
            )
        return tuple(serial)

    def _replay_and_compare(self, cluster, order: Tuple[str, ...]) -> None:
        pmap = cluster.partition_map
        single_copy: Dict[str, object] = {}
        for txn_id in order:
            txn = self._txns[txn_id]
            expected = execute(txn, single_copy)
            for index, op in enumerate(txn.ops):
                key = op[1]
                gid = pmap.group_of(key)
                for pid in self._correct_members(cluster, gid):
                    observed = cluster.stores[pid].effects_of(txn_id)
                    if observed is None:
                        continue  # atomicity already vouched coverage
                    if op[0] == "get":
                        want = expected.reads[index]
                        got = observed.reads.get(index)
                        if got != want:
                            raise SerializabilityViolation(
                                f"read divergence: replica {pid} served "
                                f"{txn_id} op#{index} get({key!r}) = "
                                f"{got!r}, but the one-copy replay "
                                f"reads {want!r}",
                                kind="read_divergence", pid=pid,
                                txn=txn_id, key=key, op_index=index,
                            )
                    elif op[0] == "cas":
                        want = expected.cas_applied[index]
                        got = observed.cas_applied.get(index)
                        if got != want:
                            raise SerializabilityViolation(
                                f"cas divergence: replica {pid} decided "
                                f"{txn_id} op#{index} cas({key!r}) "
                                f"applied={got!r}, one-copy replay "
                                f"says {want!r}",
                                kind="cas_divergence", pid=pid,
                                txn=txn_id, key=key, op_index=index,
                            )
        # Final states: every correct replica must hold exactly the
        # one-copy state projected onto its partition.
        projected: Dict[int, Dict[str, object]] = {}
        for key, value in single_copy.items():
            projected.setdefault(pmap.group_of(key), {})[key] = value
        for gid in self._topology.group_ids:
            expected_state = projected.get(gid, {})
            for pid in self._correct_members(cluster, gid):
                got_state = cluster.stores[pid].state
                if got_state == expected_state:
                    continue
                diverging = sorted(
                    key for key in set(got_state) | set(expected_state)
                    if got_state.get(key) != expected_state.get(key)
                )
                key = diverging[0]
                raise SerializabilityViolation(
                    f"state divergence: replica {pid} (partition {gid}) "
                    f"holds {key!r} = {got_state.get(key)!r}, one-copy "
                    f"replay ends with {expected_state.get(key)!r} "
                    f"({len(diverging)} diverging key(s))",
                    kind="state_divergence", pid=pid, gid=gid, key=key,
                )


def check_serializability(cluster) -> Tuple[str, ...]:
    """Post-hoc one-copy-serializability check over a finished run.

    Feeds the recorded delivery log through the streaming core (the
    fold is order-insensitive in verdict, exactly like the streaming
    property checkers) and runs the final checks; returns the global
    serial order on success.
    """
    checker = StreamingSerializabilityChecker(cluster.system.topology)
    log = cluster.system.log
    for pid in log.processes():
        for msg in log.delivered_messages(pid):
            checker.on_delivery(pid, msg)
    return checker.finalize(cluster)
