"""Transactional partitioned store over genuine atomic multicast.

The serving layer the paper's introduction motivates: each group
replicates one partition of the keyspace, and a one-shot transaction —
a declared list of deterministic operations (put/get/incr/cas) over a
declared key set — is atomically multicast to exactly the groups that
own the keys it touches.  On A-Deliver every replica executes the
transaction deterministically over its own partition; the uniform
prefix order property then makes the per-partition execution logs embed
into one global serial order, which the one-copy-serializability
checker verifies by construction *and* by replay.

Layout:

* :mod:`~repro.store.transaction` — the one-shot transaction model and
  its deterministic execution semantics;
* :mod:`~repro.store.service` — :class:`TransactionalStore`, one
  process's replica of its group's partition;
* :mod:`~repro.store.client` — :class:`StoreClient` sessions and the
  commit-latency tracker (simulated time);
* :mod:`~repro.store.workload` — seeded YCSB-style transaction
  workloads (zipf key popularity, read/write mix, multi-partition
  ratio);
* :mod:`~repro.store.cluster` — :class:`StoreCluster`, one-call
  deployment over any protocol of the registry;
* :mod:`~repro.store.checker` — the streaming one-copy-serializability
  checker;
* :mod:`~repro.store.spec` — :class:`StoreSpec`, the declarative knob
  set campaigns and the CLI share;
* :mod:`~repro.store.metrics` — store/involvement metric extractors.
"""

from repro.store.checker import (
    SerializabilityViolation,
    StreamingSerializabilityChecker,
    check_serializability,
)
from repro.store.client import CommitTracker, StoreClient
from repro.store.cluster import StoreCluster
from repro.store.service import TransactionalStore
from repro.store.spec import StoreSpec
from repro.store.transaction import Transaction, execute
from repro.store.workload import TxnPlan, partition_keys, txn_workload

__all__ = [
    "CommitTracker",
    "SerializabilityViolation",
    "StoreClient",
    "StoreCluster",
    "StoreSpec",
    "StreamingSerializabilityChecker",
    "Transaction",
    "TransactionalStore",
    "TxnPlan",
    "check_serializability",
    "execute",
    "partition_keys",
    "txn_workload",
]
