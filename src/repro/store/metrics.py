"""Campaign metric extractors for store scenarios.

Two metric families, registered in
:data:`repro.campaigns.metrics.EXTRACTORS` under ``"store"`` and
``"involvement"``:

* ``store`` — serving-layer throughput and commit latency in simulated
  time: committed/planned transaction counts, commit-latency
  percentiles, committed transactions per virtual time unit, and the
  realised multi-partition mix;
* ``involvement`` — the genuineness claim as numbers: per-group
  sent/received message copies and per-group destination counts, plus
  the ``nondest_messages`` headline (copies touched by groups outside
  every destination set — zero for genuine protocols, positive for the
  broadcast reduction).

Both read ``system.store_cluster`` and therefore only apply to
scenarios with a :class:`~repro.store.spec.StoreSpec`;
``validate_spec`` rejects the combination up front otherwise.
"""

from __future__ import annotations

from typing import Dict

from repro.reconfig.txn import is_control
from repro.runtime.report import percentile


def _cluster(system):
    cluster = getattr(system, "store_cluster", None)
    if cluster is None:
        raise ValueError(
            "store metrics require a store scenario "
            "(ScenarioSpec.store / StoreCluster.attach)"
        )
    return cluster


def store_metrics(system) -> Dict[str, float]:
    """Serving-layer counters: commits, latency, simulated throughput."""
    cluster = _cluster(system)
    tracker = cluster.tracker
    latencies = tracker.latencies()
    committed = tracker.committed_originals()
    out: Dict[str, float] = {
        "txn_planned": float(len(cluster.plans)),
        "txn_committed": float(len(committed)),
        "txn_uncommitted": float(len(tracker.uncommitted())),
    }
    # Reconfig/handoff control casts are protocol traffic, not client
    # transactions; keep them out of the realised mix.
    data_casts = [m for m in cluster.system.log.cast_map.values()
                  if not is_control(m.payload)]
    multi = [m for m in data_casts if len(m.dest_groups) > 1]
    out["txn_multi_partition_fraction"] = (
        len(multi) / len(data_casts) if data_casts else 0.0
    )
    if latencies:
        out.update({
            "txn_latency_mean": sum(latencies) / len(latencies),
            "txn_latency_p50": percentile(latencies, 0.50),
            "txn_latency_p90": percentile(latencies, 0.90),
            "txn_latency_p99": percentile(latencies, 0.99),
            "txn_latency_max": max(latencies),
        })
        span = tracker.commit_span()
        first_issue, last_commit = span
        if last_commit > first_issue:
            out["txns_per_vtime"] = (
                len(committed) / (last_commit - first_issue)
            )
    return out


def involvement_metrics(system) -> Dict[str, float]:
    """Per-group participation vs addressing (needs the trace)."""
    cluster = _cluster(system)
    report = cluster.involvement()
    out: Dict[str, float] = {
        "groups_total": float(len(report.group_ids)),
        "groups_involved": float(len(report.involved_groups())),
        "groups_nondest": float(len(report.non_destination_groups())),
        "nondest_messages": float(report.non_destination_traffic()),
    }
    for gid in report.group_ids:
        out[f"group{gid}_sent"] = float(report.sent.get(gid, 0))
        out[f"group{gid}_recv"] = float(report.received.get(gid, 0))
        out[f"group{gid}_dest_txns"] = float(report.dest_txns.get(gid, 0))
    return out
