"""Seeded transaction workloads: YCSB-style key popularity and mix.

Mirrors :mod:`repro.workload.generators` for the serving layer: a
workload is a deterministic list of :class:`TxnPlan` items — (time,
client, operations) — generated entirely from one seeded RNG stream, so
the same plan can drive different protocols in a comparison and the
campaign runner's serial-vs-parallel determinism guarantee extends to
store scenarios.

Key popularity follows a Zipf law — scoped *within each partition*
(rank-1 keys are hot, per-group load flat; the legacy mix) or, with
``popularity="global"``, over the whole keyspace so the partitions
owning globally-hot keys are hot.  The partition count per transaction
follows the declared multi-partition ratio, and transaction ids are
assigned at plan time
(``t00000`` is the first arrival) so protocol tie-breaks on mids are a
function of the seed alone, never of interpreter-global counters.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.topology import Topology
from repro.replication.partition import PartitionMap
from repro.store.spec import StoreSpec


@dataclass(frozen=True)
class TxnPlan:
    """One planned one-shot transaction."""

    time: float
    client: int
    txn_id: str
    ops: Tuple[Tuple, ...]


def key_name(index: int) -> str:
    return f"k{index:05d}"


def data_group_ids(spec: StoreSpec, topology: Topology) -> Tuple[int, ...]:
    """The groups that own partitions (validated against the topology)."""
    if spec.data_groups is None:
        return tuple(topology.group_ids)
    unknown = [g for g in spec.data_groups if g not in topology.group_ids]
    if unknown:
        raise ValueError(
            f"StoreSpec data_groups {unknown} not in topology "
            f"{tuple(topology.group_ids)}"
        )
    if not spec.data_groups:
        raise ValueError("StoreSpec data_groups must not be empty")
    return tuple(sorted(set(spec.data_groups)))


def partition_keys(spec: StoreSpec, topology: Topology) -> Dict[str, int]:
    """The explicit key → owner-group assignment (round-robin)."""
    groups = data_group_ids(spec, topology)
    return {key_name(i): groups[i % len(groups)]
            for i in range(spec.n_keys)}


def build_partition_map(spec: StoreSpec,
                        topology: Topology) -> PartitionMap:
    """The epoch-0 partition map for a store scenario.

    ``placement="explicit"`` pins every key round-robin (the legacy
    layout, byte-identical to previous releases); ``placement="ring"``
    lets the consistent-hash ring over the data groups own the keys,
    which is what elastic scenarios use — migrations then layer
    explicit overrides on top of the ring.
    """
    if spec.placement == "ring":
        return PartitionMap(topology, explicit={}, placement="ring",
                            ring_groups=data_group_ids(spec, topology),
                            vnodes=spec.ring_vnodes)
    return PartitionMap(topology, explicit=partition_keys(spec, topology))


def keys_by_group(spec: StoreSpec,
                  topology: Topology) -> Dict[int, List[str]]:
    """Owner group → its key list, in popularity-rank order."""
    pmap = build_partition_map(spec, topology)
    out: Dict[int, List[str]] = {}
    for i in range(spec.n_keys):
        key = key_name(i)
        out.setdefault(pmap.group_of(key), []).append(key)
    return out


class _ZipfPicker:
    """Draw ranks 1..n with probability ∝ 1/rank^skew (skew 0 = uniform).

    Pass ``weights`` to draw from an arbitrary popularity profile
    instead — global-popularity workloads hand each partition the
    *global* zipf weights of the keys it owns, so a group owning
    rank-1 and rank-3 keys splits its draws 1 : 1/3^skew rather than
    restarting the law at its own rank 1.
    """

    def __init__(self, n: int, skew: float,
                 weights: Optional[List[float]] = None) -> None:
        if weights is None:
            weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        total = sum(weights)
        acc = 0.0
        self._cumulative: List[float] = []
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def pick(self, rng: random.Random) -> int:
        """A zero-based rank index.

        Clamped: float summation can leave the last cumulative weight a
        few ulps under 1.0, and a draw landing in that sliver must not
        index past the end.
        """
        index = bisect_left(self._cumulative, rng.random())
        return min(index, len(self._cumulative) - 1)


def _arrival_times(spec: StoreSpec, rng: random.Random) -> List[float]:
    if spec.kind == "poisson":
        times: List[float] = []
        t = spec.start
        while True:
            t += rng.expovariate(spec.rate)
            if t >= spec.start + spec.duration:
                return times
            times.append(t)
    return [spec.start + i * spec.period for i in range(spec.count)]


def _weighted_sample(groups: List[int], mass: Dict[int, float], k: int,
                     rng: random.Random) -> List[int]:
    """``k`` distinct groups, drawn ∝ popularity mass, seed-stable."""
    pool = list(groups)
    chosen: List[int] = []
    for _ in range(k):
        total = sum(mass[g] for g in pool)
        draw = rng.random() * total
        acc = 0.0
        for i, gid in enumerate(pool):
            acc += mass[gid]
            if draw < acc:
                chosen.append(pool.pop(i))
                break
        else:  # float-summation sliver past the last cumulative weight
            chosen.append(pool.pop())
    return chosen


def _write_op(key: str, rng: random.Random) -> Tuple:
    kind = rng.choice(("put", "incr", "cas"))
    if kind == "put":
        return ("put", key, rng.randrange(1000))
    if kind == "incr":
        return ("incr", key, rng.randrange(1, 10))
    # cas against None hits fresh keys; small ints hit incr/put results
    # occasionally — both branches are deterministic either way.
    expected = rng.choice((None, 0, 1, 2, 5))
    return ("cas", key, expected, rng.randrange(1000))


def txn_workload(
    spec: StoreSpec,
    topology: Topology,
    clients: Sequence[int],
    rng: random.Random,
) -> List[TxnPlan]:
    """Materialise the transaction plan for one (spec, topology, seed).

    Each arrival picks its issuing client uniformly, its partition count
    from the multi-partition ratio, one zipf-popular key per chosen
    partition (plus zipf extras up to ``ops_per_txn``), and a
    get/put/incr/cas op per key from the read/write mix.
    """
    clients = list(clients)
    if not clients:
        raise ValueError("txn_workload needs at least one client pid")
    by_group = keys_by_group(spec, topology)
    groups = sorted(by_group)
    if spec.popularity == "global":
        # One zipf law over the whole keyspace: a partition draws with
        # the *global* weights of the keys it owns, and partitions are
        # themselves chosen ∝ their owned popularity mass — the groups
        # holding globally-hot keys become hot.
        def _w(key: str) -> float:
            return 1.0 / ((int(key[1:]) + 1) ** spec.zipf_skew)

        pickers = {gid: _ZipfPicker(len(keys), spec.zipf_skew,
                                    weights=[_w(k) for k in keys])
                   for gid, keys in by_group.items()}
        mass: Optional[Dict[int, float]] = {
            gid: sum(_w(k) for k in keys)
            for gid, keys in by_group.items()
        }
    else:
        pickers = {gid: _ZipfPicker(len(keys), spec.zipf_skew)
                   for gid, keys in by_group.items()}
        mass = None
    max_parts = min(spec.max_partitions, len(groups))
    plans: List[TxnPlan] = []
    for arrival, t in enumerate(_arrival_times(spec, rng)):
        if len(groups) > 1 and rng.random() < spec.multi_partition_fraction:
            n_parts = rng.randint(2, max_parts)
        else:
            n_parts = 1
        if mass is not None:
            chosen = sorted(_weighted_sample(groups, mass, n_parts, rng))
        else:
            chosen = sorted(rng.sample(groups, n_parts))
        keys: List[str] = []
        for gid in chosen:
            keys.append(by_group[gid][pickers[gid].pick(rng)])
        while len(keys) < spec.ops_per_txn:
            gid = rng.choice(chosen)
            keys.append(by_group[gid][pickers[gid].pick(rng)])
        ops = tuple(
            ("get", key) if rng.random() < spec.read_fraction
            else _write_op(key, rng)
            for key in keys
        )
        plans.append(TxnPlan(
            time=t, client=rng.choice(clients),
            txn_id=f"t{arrival:05d}", ops=ops,
        ))
    return plans
