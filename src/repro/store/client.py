"""Client sessions and commit-latency accounting (simulated time).

A :class:`StoreClient` is the request layer: it owns a session against
one replica, stamps each submitted transaction with its issue time, and
asks the shared :class:`CommitTracker` to watch for the commit point.

**Commit point.**  A one-shot transaction is *committed* at the first
virtual instant by which every destination partition has executed it at
at least one replica — from then on its position in the global serial
order is fixed everywhere its data lives, and a read served by any of
those partitions reflects it.  Static deployments observe this through
the system-wide delivery hook (the same subscription surface the
streaming checkers use; execution happens at delivery).  Elastic
deployments (service queues, migrations) observe per-replica
*execution* notifications instead, because execution can lag delivery
there — and a transaction fenced with ``WrongEpoch`` only commits once
the residue transaction carrying its bounced ops commits too, so the
recorded latency spans the whole retry.

The tracker also journals per-key commit heat (``key_commits``), which
is the :class:`~repro.reconfig.balancer.LoadBalancer`'s only input —
the balancer reacts to observed commit rates, not to the workload spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.interfaces import AppMessage
from repro.store.service import TransactionalStore
from repro.store.transaction import Transaction

#: Commit observation modes.
SOURCES = ("delivery", "execution")


class _Entry:
    """Book-keeping for one in-flight transaction."""

    __slots__ = ("issue", "remaining", "keys", "parent",
                 "open_residues", "awaiting")

    def __init__(self, issue: float, remaining: Set[int], keys: tuple,
                 parent: Optional[str]) -> None:
        self.issue = issue
        self.remaining = remaining
        self.keys = keys
        self.parent = parent
        #: residue txn ids spawned for this txn, not yet committed.
        self.open_residues: Set[str] = set()
        #: bounces received for which no residue has registered yet.
        self.awaiting = 0


class CommitTracker:
    """Watches deliveries/executions, records commit latency and heat."""

    def __init__(self, system, source: str = "delivery") -> None:
        if source not in SOURCES:
            raise ValueError(
                f"unknown commit source {source!r}; have {list(SOURCES)}"
            )
        self._system = system
        self._topology = system.topology
        self.source = source
        self._pending: Dict[str, _Entry] = {}
        #: txn id -> (issue time, commit time), commit order.
        self.committed: Dict[str, Tuple[float, float]] = {}
        #: txn id -> parent txn id, for residue transactions.
        self.parents: Dict[str, str] = {}
        #: (commit time, keys) per committed txn, commit order.
        self.key_commits: List[Tuple[float, tuple]] = []
        #: (issue time, keys) per registered txn, issue order — the
        #: demand signal.  Under saturation a queued partition's commit
        #: rate is capped at 1/service_time, so commit heat understates
        #: exactly the partitions that need relief; issue heat doesn't.
        self.key_issues: List[Tuple[float, tuple]] = []
        #: (txn id, gid) pairs that bounced with WrongEpoch.
        self.bounces: Set[Tuple[str, int]] = set()
        if source == "delivery":
            system.add_delivery_hook(self.on_delivery)

    def register(self, txn_id: str, dest_groups, issue_time: float,
                 keys: tuple = (), parent: Optional[str] = None) -> None:
        if txn_id in self._pending or txn_id in self.committed:
            raise ValueError(f"transaction {txn_id!r} already tracked")
        entry = _Entry(issue_time, set(dest_groups), tuple(keys), parent)
        self._pending[txn_id] = entry
        self.key_issues.append((issue_time, entry.keys))
        if parent is not None:
            self.parents[txn_id] = parent
            up = self._pending.get(parent)
            if up is not None:
                up.open_residues.add(txn_id)
                up.awaiting = max(up.awaiting - 1, 0)

    # ------------------------------------------------------------------
    # Observation surfaces
    # ------------------------------------------------------------------
    def on_delivery(self, pid: int, msg: AppMessage) -> None:
        entry = self._pending.get(msg.mid)
        if entry is None:
            return
        entry.remaining.discard(self._topology.group_of(pid))
        self._maybe_commit(msg.mid)

    def on_executed(self, pid: int, txn_id: str) -> None:
        """A replica executed the transaction (execution source)."""
        entry = self._pending.get(txn_id)
        if entry is None:
            return
        entry.remaining.discard(self._topology.group_of(pid))
        self._maybe_commit(txn_id)

    def on_rejected(self, txn_id: str, gid: int, keys: tuple) -> None:
        """Group ``gid`` fenced the transaction: hold the commit until
        a residue covering the bounced ops registers and commits."""
        if (txn_id, gid) in self.bounces:
            return  # every replica of the group reports the same fence
        self.bounces.add((txn_id, gid))
        entry = self._pending.get(txn_id)
        if entry is not None:
            entry.awaiting += 1

    def _maybe_commit(self, txn_id: str) -> None:
        entry = self._pending.get(txn_id)
        if entry is None:
            return
        if entry.remaining or entry.awaiting or entry.open_residues:
            return
        del self._pending[txn_id]
        now = self._system.sim.now
        self.committed[txn_id] = (entry.issue, now)
        self.key_commits.append((now, entry.keys))
        if entry.parent is not None:
            up = self._pending.get(entry.parent)
            if up is not None:
                up.open_residues.discard(txn_id)
                self._maybe_commit(entry.parent)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def latencies(self) -> List[float]:
        """Commit latency of every committed *original* transaction
        (residues fold into their parent's latency), commit order."""
        return [commit - issue
                for txn_id, (issue, commit) in self.committed.items()
                if txn_id not in self.parents]

    def committed_originals(self) -> List[str]:
        """Committed transactions that are not residues."""
        return [txn_id for txn_id in self.committed
                if txn_id not in self.parents]

    def uncommitted(self) -> List[str]:
        """Transactions issued but never fully covered (e.g. crashes)."""
        return sorted(self._pending)

    def commit_span(self) -> Optional[Tuple[float, float]]:
        """(first issue, last commit) across committed transactions."""
        if not self.committed:
            return None
        return (min(issue for issue, _ in self.committed.values()),
                max(commit for _, commit in self.committed.values()))


class StoreClient:
    """One client session, bound to a replica of the serving layer."""

    def __init__(self, store: TransactionalStore,
                 tracker: Optional[CommitTracker] = None,
                 tag_routes: bool = False,
                 max_retries: int = 5) -> None:
        self.store = store
        self.tracker = tracker
        #: Stamp per-key routes on submitted transactions (elastic
        #: deployments need them for epoch fencing).
        self.tag_routes = tag_routes
        self.max_retries = max_retries
        #: Transactions this session issued, in issue order.
        self.issued: List[str] = []
        #: Ownership updates learned from WrongEpoch bounces.
        self.overrides: Dict[str, int] = {}
        #: Epoch fence legs: key -> groups that bounced it.  A txn
        #: routed per learned ownership is *also* multicast to these
        #: former owners; the extra leg restores the pairwise-ordering
        #: link with old-epoch transactions whose ops for the key went
        #: to the former owner (two txns touching the key on opposite
        #: sides of a migration would otherwise share no destination
        #: group, and an indirect conflict through a third key could
        #: order them inconsistently).  The former owner executes no
        #: ops — the routes name the new owner — it only orders.
        self.fences: Dict[str, Set[int]] = {}
        self._ops: Dict[str, tuple] = {}
        self._handled_bounces: Set[Tuple[str, int]] = set()
        self._retries: Dict[str, int] = {}
        self._residue_seq = 0
        #: Residues this client gave up on (retry budget exhausted).
        self.abandoned: List[str] = []

    @property
    def pid(self) -> int:
        return self.store.process.pid

    def _route_of(self, key: str) -> int:
        if key in self.overrides:
            return self.overrides[key]
        return self.store.partition_map.group_of(key)

    def submit(self, txn_id: str, ops,
               parent: Optional[str] = None) -> AppMessage:
        """Issue a one-shot transaction now; returns the cast message."""
        ops = tuple(tuple(op) for op in ops)
        routes = None
        if self.tag_routes:
            seen: Dict[str, int] = {}
            for op in ops:
                seen.setdefault(op[1], self._route_of(op[1]))
            routes = tuple(sorted(seen.items()))
        txn = Transaction(txn_id=txn_id, client=self.pid, ops=ops,
                          routes=routes)
        if self.store.routing == "broadcast":
            dest = self.store.destinations_of(txn)
        elif routes is not None:
            gids = {gid for _, gid in routes}
            for key, _ in routes:
                gids.update(self.fences.get(key, ()))
            dest = tuple(sorted(gids))
        else:
            dest = self.store.destinations_of(txn)
        if self.tracker is not None:
            self.tracker.register(
                txn.txn_id, dest,
                issue_time=self.store.process.sim.now,
                keys=txn.keys(), parent=parent,
            )
        self.issued.append(txn.txn_id)
        self._ops[txn.txn_id] = ops
        return self.store.submit(txn, dest=dest)

    def learn(self, key: str, owner: int, formers) -> None:
        """Accept a pushed ownership update (placement-driver style).

        ``formers`` must carry the key's *full* former-owner chain back
        to epoch 0: the fence legs derived from it are what order this
        session's future transactions on the key after every old-epoch
        transaction, exactly as a chain of bounces would have.
        """
        self.overrides[key] = owner
        self.fences.setdefault(key, set()).update(formers)

    def on_wrong_epoch(self, txn_id: str, gid: int, bounced: tuple,
                       updates: Dict[str, int]) -> None:
        """A replica fenced our transaction: learn the new owners and
        retry the bounced ops as a residue transaction."""
        self.overrides.update(updates)
        for key in bounced:
            self.fences.setdefault(key, set()).add(gid)
        if (txn_id, gid) in self._handled_bounces:
            return  # every replica of the group sends the same notice
        self._handled_bounces.add((txn_id, gid))
        base = txn_id.split("~r", 1)[0]
        attempt = self._retries.get(base, 0) + 1
        self._retries[base] = attempt
        if attempt > self.max_retries:
            self.abandoned.append(txn_id)
            return
        ops = self._ops.get(txn_id, ())
        residue_ops = tuple(op for op in ops if op[1] in bounced)
        if not residue_ops:
            return
        self._residue_seq += 1
        residue_id = f"{base}~r{self._residue_seq}"
        self.submit(residue_id, residue_ops, parent=txn_id)
