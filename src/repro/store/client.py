"""Client sessions and commit-latency accounting (simulated time).

A :class:`StoreClient` is the request layer: it owns a session against
one replica, stamps each submitted transaction with its issue time, and
asks the shared :class:`CommitTracker` to watch the A-Deliver stream
for the commit point.

**Commit point.**  A one-shot transaction is *committed* at the first
virtual instant by which every destination partition has executed it at
at least one replica — from then on its position in the global serial
order is fixed everywhere its data lives, and a read served by any of
those partitions reflects it.  The tracker observes this through the
system-wide delivery hook (the same subscription surface the streaming
checkers use), so latency accounting adds zero messages to the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.interfaces import AppMessage
from repro.store.service import TransactionalStore
from repro.store.transaction import Transaction


class CommitTracker:
    """Watches deliveries and records per-transaction commit latency."""

    def __init__(self, system) -> None:
        self._system = system
        self._topology = system.topology
        # txn id -> (issue time, destination groups not yet reached).
        self._pending: Dict[str, Tuple[float, Set[int]]] = {}
        #: txn id -> (issue time, commit time), commit order.
        self.committed: Dict[str, Tuple[float, float]] = {}
        system.add_delivery_hook(self.on_delivery)

    def register(self, txn_id: str, dest_groups, issue_time: float) -> None:
        if txn_id in self._pending or txn_id in self.committed:
            raise ValueError(f"transaction {txn_id!r} already tracked")
        self._pending[txn_id] = (issue_time, set(dest_groups))

    def on_delivery(self, pid: int, msg: AppMessage) -> None:
        entry = self._pending.get(msg.mid)
        if entry is None:
            return
        issue_time, remaining = entry
        remaining.discard(self._topology.group_of(pid))
        if not remaining:
            del self._pending[msg.mid]
            self.committed[msg.mid] = (issue_time, self._system.sim.now)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def latencies(self) -> List[float]:
        """Commit latency of every committed transaction, commit order."""
        return [commit - issue
                for issue, commit in self.committed.values()]

    def uncommitted(self) -> List[str]:
        """Transactions issued but never fully covered (e.g. crashes)."""
        return sorted(self._pending)

    def commit_span(self) -> Optional[Tuple[float, float]]:
        """(first issue, last commit) across committed transactions."""
        if not self.committed:
            return None
        return (min(issue for issue, _ in self.committed.values()),
                max(commit for _, commit in self.committed.values()))


class StoreClient:
    """One client session, bound to a replica of the serving layer."""

    def __init__(self, store: TransactionalStore,
                 tracker: Optional[CommitTracker] = None) -> None:
        self.store = store
        self.tracker = tracker
        #: Transactions this session issued, in issue order.
        self.issued: List[str] = []

    @property
    def pid(self) -> int:
        return self.store.process.pid

    def submit(self, txn_id: str, ops) -> AppMessage:
        """Issue a one-shot transaction now; returns the cast message."""
        txn = Transaction(txn_id=txn_id, client=self.pid,
                          ops=tuple(tuple(op) for op in ops))
        if self.tracker is not None:
            self.tracker.register(
                txn.txn_id, self.store.destinations_of(txn),
                issue_time=self.store.process.sim.now,
            )
        self.issued.append(txn.txn_id)
        return self.store.submit(txn)
