"""The serving replica: execute delivered transactions over a partition.

:class:`TransactionalStore` is one process's replica of its group's
partition.  It routes submitted transactions (genuinely, to exactly the
owner groups — or system-wide under ``routing="broadcast"``, the
introduction's non-genuine alternative) and, on A-Deliver, executes
them in delivery order through the shared deterministic executor of
:mod:`repro.store.transaction`, restricted to the keys it owns.

The replica journals everything the serializability checker needs:
the per-replica execution log (``applied``), the observed read values
and cas outcomes per transaction (``effects_of``), and the live
partition state (``owned_snapshot``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.interfaces import AppMessage
from repro.replication.partition import PartitionMap
from repro.sim.process import Process
from repro.store.transaction import Transaction, TxnEffects, execute

#: Routing disciplines: genuine multicast to the owner groups, or the
#: broadcast-everything reduction the paper's introduction compares
#: against (every group receives and orders every transaction).
ROUTINGS = ("genuine", "broadcast")

# Completion callback: fired with the txn id when the local replica
# executes the transaction (its global position is then fixed).
CompletionHandler = Callable[[str], None]


class TransactionalStore:
    """One process's replica of the transactional partitioned store."""

    def __init__(
        self,
        process: Process,
        partition_map: PartitionMap,
        multicast,
        routing: str = "genuine",
    ) -> None:
        """Wrap a multicast endpoint into a transactional replica.

        The endpoint must not have a delivery handler installed; the
        store registers its own.
        """
        if routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing {routing!r}; have {list(ROUTINGS)}"
            )
        self.process = process
        self.partition_map = partition_map
        self.multicast = multicast
        self.routing = routing
        self.my_gid = partition_map.topology.group_of(process.pid)
        self.state: Dict[str, object] = {}
        self.applied: List[str] = []          # txn ids, execution order
        self.applied_txns: List[Transaction] = []
        self._effects: Dict[str, TxnEffects] = {}
        self._waiters: Dict[str, List[CompletionHandler]] = {}
        multicast.set_delivery_handler(self._on_deliver)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def destinations_of(self, txn: Transaction):
        """The destination-group set ``txn`` will be multicast to."""
        if self.routing == "broadcast":
            return tuple(self.partition_map.topology.group_ids)
        return self.partition_map.groups_of(txn.keys())

    def submit(self, txn: Transaction,
               on_applied: Optional[CompletionHandler] = None) -> AppMessage:
        """Atomically multicast a one-shot transaction; returns the cast.

        Under genuine routing the destination set is exactly the groups
        owning the declared key set; under broadcast routing it is every
        group (the non-genuine reduction the campaigns quantify).
        """
        dest = self.destinations_of(txn)
        if on_applied is not None:
            if self.my_gid not in dest:
                raise ValueError(
                    "completion callbacks need the submitting replica's "
                    "group among the destinations (the local replica "
                    "must execute the transaction)"
                )
            self._waiters.setdefault(txn.txn_id, []).append(on_applied)
        msg = AppMessage.fresh(sender=self.process.pid, dest_groups=dest,
                               payload=txn.to_payload(), mid=txn.txn_id)
        self.multicast.a_mcast(msg)
        return msg

    def get(self, key: str) -> object:
        """Read a key from the local replica (must own the partition)."""
        if not self.partition_map.is_replica(self.process.pid, key):
            raise KeyError(
                f"process {self.process.pid} does not replicate {key!r} "
                f"(it lives in group {self.partition_map.group_of(key)})"
            )
        return self.state.get(key)

    def owned_snapshot(self) -> Dict[str, object]:
        """All locally replicated key/value pairs."""
        return dict(self.state)

    def effects_of(self, txn_id: str) -> Optional[TxnEffects]:
        """The effects this replica observed executing ``txn_id``."""
        return self._effects.get(txn_id)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _owns(self, key: str) -> bool:
        return self.partition_map.group_of(key) == self.my_gid

    def _on_deliver(self, msg: AppMessage) -> None:
        txn = Transaction.from_payload(msg.payload)
        self.applied.append(txn.txn_id)
        self.applied_txns.append(txn)
        self._effects[txn.txn_id] = execute(txn, self.state,
                                            owned=self._owns)
        for waiter in self._waiters.pop(txn.txn_id, []):
            waiter(txn.txn_id)
