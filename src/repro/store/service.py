"""The serving replica: execute delivered transactions over a partition.

:class:`TransactionalStore` is one process's replica of its group's
partition.  It routes submitted transactions (genuinely, to exactly the
owner groups — or system-wide under ``routing="broadcast"``, the
introduction's non-genuine alternative) and, on A-Deliver, executes
them in delivery order through the shared deterministic executor of
:mod:`repro.store.transaction`, restricted to the keys it owns.

**Elastic repartitioning.**  The replica also speaks the migration
protocol of :mod:`repro.reconfig`: reconfig (**R**) and handoff
(**H**) control messages arrive through the same atomic multicast as
data transactions, so every ownership change has a totally-ordered
position.  On R a source replica snapshots the moving keys, deletes
them (sheds), flips its map view and — if it is the designated
lowest-pid correct source member — casts H carrying the snapshot; a
target replica tentatively flips ownership and *stalls* its execution
pipeline for transactions touching the moving keys until H installs
the state.  A transaction routed under a stale epoch is *fenced*: the
replica that shed the key executes only its still-owned share,
records a rejection, and schedules a ``WrongEpoch`` bounce so the
client can retry the leftover ops against the new owner.  Execution
order always equals delivery order restricted to executed items —
stalled transactions queue strictly FIFO (controls may overtake a
stalled queue head, data never does), which is what keeps the
serializability checker's cross-group precedence graph acyclic.

The replica journals everything the checkers need: the per-replica
execution log (``applied``, including ``@mid`` markers for control
messages), the observed read values and cas outcomes per transaction
(``effects_of``), the rejection log, the reconfig outcome maps and the
live partition state (``owned_snapshot``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.interfaces import AppMessage
from repro.reconfig.txn import Handoff, ReconfigOp, is_control, parse_control
from repro.replication.partition import PartitionMap
from repro.sim.process import Process
from repro.store.transaction import Transaction, TxnEffects, execute

#: Routing disciplines: genuine multicast to the owner groups, or the
#: broadcast-everything reduction the paper's introduction compares
#: against (every group receives and orders every transaction).
ROUTINGS = ("genuine", "broadcast")

# Completion callback: fired with the txn id when the local replica
# executes the transaction (its global position is then fixed).
CompletionHandler = Callable[[str], None]


class TransactionalStore:
    """One process's replica of the transactional partitioned store."""

    def __init__(
        self,
        process: Process,
        partition_map: PartitionMap,
        multicast,
        routing: str = "genuine",
        service_time: float = 0.0,
        notice_delay: float = 1.0,
    ) -> None:
        """Wrap a multicast endpoint into a transactional replica.

        The endpoint must not have a delivery handler installed; the
        store registers its own.  ``service_time`` > 0 gives the
        replica a serial execution queue (each transaction occupies the
        replica for that long), which is what makes hot partitions
        measurably hot; 0 keeps the legacy execute-at-delivery
        behaviour with no extra simulator events.
        """
        if routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing {routing!r}; have {list(ROUTINGS)}"
            )
        self.process = process
        self.partition_map = partition_map
        self.multicast = multicast
        self.routing = routing
        self.service_time = service_time
        self.notice_delay = notice_delay
        self.my_gid = partition_map.topology.group_of(process.pid)
        self.state: Dict[str, object] = {}
        self.applied: List[str] = []          # txn/control ids, exec order
        self.applied_txns: List[object] = []  # Transaction | ReconfigOp | Handoff
        self._effects: Dict[str, TxnEffects] = {}
        self._waiters: Dict[str, List[CompletionHandler]] = {}
        # --- reconfiguration state -----------------------------------
        #: keys this replica's group shed: key -> (new owner, reconfig id).
        self.shed: Dict[str, Tuple[int, str]] = {}
        #: keys tentatively owned here, state still in flight: key -> rid.
        self.pending_keys: Dict[str, str] = {}
        #: reconfigs awaiting their handoff at this (target) replica.
        self.pending_reconfigs: Dict[str, dict] = {}
        #: reconfig id -> virtual completion time at this replica.
        self.completed_reconfigs: Dict[str, float] = {}
        #: reconfig id -> virtual abort time at this replica.
        self.aborted_reconfigs: Dict[str, float] = {}
        #: every R this replica processed, by id (checker input).
        self.initiated_reconfigs: Dict[str, ReconfigOp] = {}
        #: every non-aborted H this replica processed, by id.
        self.handoffs: Dict[str, Handoff] = {}
        #: fenced transactions: dicts of position/txn_id/keys/gid.
        self.rejections: List[dict] = []
        # --- execution pipeline --------------------------------------
        self._inbox: List[Tuple[AppMessage, object]] = []
        self._executing = False
        self._stall_since: Optional[float] = None
        #: total virtual time this replica spent stalled on migrations.
        self.stall_time = 0.0
        # --- wiring installed by StoreCluster ------------------------
        #: fired as hook(pid, txn_id) when a data txn executes here.
        self.on_execute_hooks: List[Callable[[int, str], None]] = []
        #: fired as hook(txn_id, gid, keys) when this replica fences one.
        self.on_reject_hooks: List[Callable[[str, int, tuple], None]] = []
        #: callable(client_pid, txn_id, gid, keys, updates) or None.
        self.bounce_notify = None
        #: callable(pid) -> crashed?, for designated-caster election.
        self.peer_crashed = None
        multicast.set_delivery_handler(self._on_deliver)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def destinations_of(self, txn: Transaction,
                        overrides: Optional[Dict[str, int]] = None):
        """The destination-group set ``txn`` will be multicast to.

        ``overrides`` layers a client's learned ownership updates (from
        ``WrongEpoch`` bounces) over this replica's map view.
        """
        if self.routing == "broadcast":
            return tuple(self.partition_map.topology.group_ids)
        if not overrides:
            return self.partition_map.groups_of(txn.keys())
        gids = {overrides.get(k, self.partition_map.group_of(k))
                for k in txn.keys()}
        return tuple(sorted(gids))

    def submit(self, txn: Transaction,
               on_applied: Optional[CompletionHandler] = None,
               dest=None) -> AppMessage:
        """Atomically multicast a one-shot transaction; returns the cast.

        Under genuine routing the destination set is exactly the groups
        owning the declared key set; under broadcast routing it is every
        group (the non-genuine reduction the campaigns quantify).
        ``dest`` lets a client supply the destination set it computed
        (with its own ownership overrides) so registration and routing
        agree exactly.
        """
        if dest is None:
            dest = self.destinations_of(txn)
        if on_applied is not None:
            if self.my_gid not in dest:
                raise ValueError(
                    "completion callbacks need the submitting replica's "
                    "group among the destinations (the local replica "
                    "must execute the transaction)"
                )
            self._waiters.setdefault(txn.txn_id, []).append(on_applied)
        msg = AppMessage.fresh(sender=self.process.pid, dest_groups=dest,
                               payload=txn.to_payload(), mid=txn.txn_id)
        self.multicast.a_mcast(msg)
        return msg

    def submit_reconfig(self, op: ReconfigOp) -> AppMessage:
        """Multicast a reconfiguration genuinely to ``{src, dst}``."""
        msg = AppMessage.fresh(sender=self.process.pid,
                               dest_groups=op.dest_groups,
                               payload=op.to_payload(),
                               mid=op.reconfig_id)
        self.multicast.a_mcast(msg)
        return msg

    def get(self, key: str) -> object:
        """Read a key from the local replica (must own the partition)."""
        if not self.partition_map.is_replica(self.process.pid, key):
            raise KeyError(
                f"process {self.process.pid} does not replicate {key!r} "
                f"(it lives in group {self.partition_map.group_of(key)})"
            )
        return self.state.get(key)

    def owned_snapshot(self) -> Dict[str, object]:
        """All locally replicated key/value pairs."""
        return dict(self.state)

    def effects_of(self, txn_id: str) -> Optional[TxnEffects]:
        """The effects this replica observed executing ``txn_id``."""
        return self._effects.get(txn_id)

    def reconfig_finished(self, reconfig_id: str) -> bool:
        """Has this replica seen the reconfig through to an outcome?"""
        return (reconfig_id in self.completed_reconfigs
                or reconfig_id in self.aborted_reconfigs)

    def stalled_txn_ids(self) -> List[str]:
        """Data transactions still queued behind a migration."""
        return [item.txn_id for _, item in self._inbox
                if isinstance(item, Transaction)]

    # ------------------------------------------------------------------
    # Replication: the execution pipeline
    # ------------------------------------------------------------------
    def _owns(self, key: str) -> bool:
        return self.partition_map.group_of(key) == self.my_gid

    def _on_deliver(self, msg: AppMessage) -> None:
        if is_control(msg.payload):
            item: object = parse_control(msg.payload)
        else:
            item = Transaction.from_payload(msg.payload)
        self._inbox.append((msg, item))
        self._pump()

    def _pump(self) -> None:
        """Drain the inbox in order; controls may overtake a stalled
        head (ownership metadata never waits behind data), data never
        reorders against data."""
        while self._inbox and not self._executing:
            msg, item = self._inbox[0]
            if isinstance(item, (ReconfigOp, Handoff)):
                self._inbox.pop(0)
                self._apply_control(msg, item)
                continue
            if self._unresolved(item):
                ctl = next(
                    (i for i, (_, it) in enumerate(self._inbox)
                     if isinstance(it, (ReconfigOp, Handoff))), None)
                if ctl is None:
                    self._begin_stall()
                    return
                cmsg, citem = self._inbox.pop(ctl)
                self._apply_control(cmsg, citem)
                continue
            self._inbox.pop(0)
            self._end_stall()
            if self.service_time > 0 and self._has_local_work(item):
                self._executing = True
                sim = self.process.sim
                sim.call_at(
                    sim.now + self.service_time,
                    lambda m=msg, t=item: self._finish_execute(m, t),
                    label=f"exec:{item.txn_id}@{self.process.pid}",
                )
                return
            self._execute(msg, item)

    def _finish_execute(self, msg: AppMessage, txn: Transaction) -> None:
        if self.process.crashed:
            return  # the replica died with the txn on its belt
        self._executing = False
        self._execute(msg, txn)
        self._pump()

    def _has_local_work(self, txn: Transaction) -> bool:
        """Will this replica execute at least one of the txn's ops?

        Ordering is cheap; execution is the cost.  A delivery that
        executes nothing here — an epoch fence leg at a former owner,
        or a transaction whose local ops were all shed to a new owner —
        takes its journal position immediately instead of occupying the
        service stage, so moving a hot key genuinely moves its
        execution cost.  (The decision is stable across the service
        delay: controls never apply while a transaction is in
        service, so the map view cannot change underneath it.)
        """
        for op in txn.ops:
            key = op[1]
            if txn.routes is not None and txn.route_of(key) != self.my_gid:
                continue
            if self._owns(key):
                return True
        return False

    def _unresolved(self, txn: Transaction) -> bool:
        """Must this transaction wait for a migration to land?

        True when an op addressed *to this group* touches a key whose
        state is still in flight (between R and H) or whose move here
        hasn't been delivered yet (the client's bounce-updated route
        outran the reconfig message).  Untagged transactions (static
        deployments) never stall.
        """
        if txn.routes is None:
            return False
        for key, gid in txn.routes:
            if gid != self.my_gid:
                continue
            if key in self.pending_keys:
                return True
            if (self.partition_map.group_of(key) != self.my_gid
                    and key not in self.shed):
                return True
        return False

    def _begin_stall(self) -> None:
        if self._stall_since is None:
            self._stall_since = self.process.sim.now

    def _end_stall(self) -> None:
        if self._stall_since is not None:
            self.stall_time += self.process.sim.now - self._stall_since
            self._stall_since = None

    # ------------------------------------------------------------------
    # Data execution
    # ------------------------------------------------------------------
    def _execute(self, msg: AppMessage, txn: Transaction) -> None:
        self.applied.append(txn.txn_id)
        self.applied_txns.append(txn)
        if txn.routes is None:
            owned = self._owns
        else:
            owned = (lambda key: txn.route_of(key) == self.my_gid
                     and self._owns(key))
        self._effects[txn.txn_id] = execute(txn, self.state, owned=owned)
        bounced = tuple(sorted(
            key for key, gid in (txn.routes or ())
            if gid == self.my_gid and key in self.shed
        ))
        if bounced:
            self.rejections.append({
                "position": len(self.applied) - 1,
                "txn_id": txn.txn_id,
                "keys": bounced,
                "gid": self.my_gid,
            })
            for hook in self.on_reject_hooks:
                hook(txn.txn_id, self.my_gid, bounced)
            self._send_bounce(txn, bounced)
        for hook in self.on_execute_hooks:
            hook(self.process.pid, txn.txn_id)
        for waiter in self._waiters.pop(txn.txn_id, []):
            waiter(txn.txn_id)

    def _send_bounce(self, txn: Transaction, bounced: tuple) -> None:
        """Schedule the WrongEpoch notice back to the issuing client.

        Modeled as a point-to-point notification outside the multicast
        (``notice_delay`` stands in for the reply latency); it carries
        the new owner per key so the client can reroute the leftover
        ops.
        """
        if self.bounce_notify is None:
            return
        updates = {k: self.partition_map.group_of(k) for k in bounced}
        sim = self.process.sim
        sim.call_at(
            sim.now + self.notice_delay,
            lambda: self.bounce_notify(txn.client, txn.txn_id,
                                       self.my_gid, bounced, updates),
            label=f"bounce:{txn.txn_id}@{self.process.pid}",
        )

    # ------------------------------------------------------------------
    # Control execution (reconfig / handoff)
    # ------------------------------------------------------------------
    def _apply_control(self, msg: AppMessage, item) -> None:
        self._end_stall()
        self.applied.append(f"@{msg.mid}")
        self.applied_txns.append(item)
        if isinstance(item, ReconfigOp):
            self._apply_reconfig(item)
        else:
            self._apply_handoff(item)

    def _designated_caster(self) -> bool:
        """Is this replica the lowest-pid correct member of its group?"""
        members = self.partition_map.topology.members(self.my_gid)
        if self.peer_crashed is not None:
            members = [q for q in members if not self.peer_crashed(q)]
        return bool(members) and min(members) == self.process.pid

    def _apply_reconfig(self, op: ReconfigOp) -> None:
        rid = op.reconfig_id
        self.initiated_reconfigs[rid] = op
        if self.my_gid == op.src:
            # CAS against this view: the source proceeds only if it
            # still owns every moving key and none is already moving.
            # All source replicas evaluate this at the same position of
            # the same group order, so they decide identically.
            ok = all(
                self.partition_map.group_of(k) == op.src
                and k not in self.pending_keys and k not in self.shed
                for k in op.keys
            )
            snapshot: Tuple[Tuple[str, object], ...] = ()
            if ok:
                snapshot = tuple(
                    (k, self.state[k]) for k in sorted(op.keys)
                    if k in self.state
                )
                for k in op.keys:
                    self.state.pop(k, None)
                    self.shed[k] = (op.dst, rid)
                self.partition_map.apply_move(op.keys, op.dst)
            else:
                self.aborted_reconfigs[rid] = self.process.sim.now
            # The designated source replica ships the handoff — aborted
            # or not, so the target always learns the outcome and can
            # unwind its tentative flip.
            if self._designated_caster():
                h = Handoff(reconfig_id=rid, src=op.src, dst=op.dst,
                            keys=op.keys, snapshot=snapshot,
                            aborted=not ok)
                hmsg = AppMessage.fresh(
                    sender=self.process.pid, dest_groups=h.dest_groups,
                    payload=h.to_payload(),
                    mid=f"{rid}:h{self.process.pid}",
                )
                self.multicast.a_mcast(hmsg)
        elif self.my_gid == op.dst:
            if self.reconfig_finished(rid):
                return  # a handoff already settled this reconfig
            # Tentative flip: ownership changes *now* (this delivery is
            # the epoch boundary); the state arrives with the handoff,
            # and anything touching the keys stalls until it does.
            self.pending_reconfigs[rid] = {
                "op": op,
                "prev": self.partition_map.assignments_of(op.keys),
            }
            for k in op.keys:
                self.pending_keys[k] = rid
            self.partition_map.apply_move(op.keys, op.dst)

    def _apply_handoff(self, h: Handoff) -> None:
        rid = h.reconfig_id
        if self.reconfig_finished(rid) and rid not in self.pending_reconfigs:
            return  # duplicate handoff (racing designated casters)
        self.handoffs.setdefault(rid, h)
        now = self.process.sim.now
        if self.my_gid == h.dst:
            pending = self.pending_reconfigs.pop(rid, None)
            if h.aborted:
                # Roll the tentative flip back to the prior epoch.
                if pending is not None:
                    self.partition_map.apply_assignments(pending["prev"])
                    for k in h.keys:
                        if self.pending_keys.get(k) == rid:
                            del self.pending_keys[k]
                self.aborted_reconfigs[rid] = now
            else:
                if pending is None:
                    # The reconfig's own R has not been processed here
                    # (only reachable if the multicast's pairwise order
                    # is broken); take ownership defensively so state
                    # is not lost, and let the checkers flag the order.
                    self.partition_map.apply_move(h.keys, h.dst)
                self.state.update(h.snapshot_dict())
                for k in h.keys:
                    if self.pending_keys.get(k) == rid:
                        del self.pending_keys[k]
                    self.shed.pop(k, None)
                self.completed_reconfigs[rid] = now
        else:
            # Source (or defensive bystander) side: record the outcome.
            if h.aborted:
                self.aborted_reconfigs.setdefault(rid, now)
            else:
                self.completed_reconfigs[rid] = now
