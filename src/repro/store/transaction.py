"""One-shot transactions and their deterministic execution semantics.

A :class:`Transaction` declares everything up front — the full list of
operations and, through them, its read and write sets — so it can be
routed with :meth:`PartitionMap.groups_of` and executed at every
destination replica *without further coordination*.  This is the
one-shot model of deterministic databases (Calvin, and Pod in
PAPERS.md): atomic multicast fixes the position of the transaction in
the global order, and a deterministic executor turns that position into
identical effects at every replica.

Determinism constraints baked into the model:

* every operation reads and writes a **single key**, so a replica that
  owns only some of the keys can execute its share without seeing the
  other partitions' state;
* conditional operations (``cas``) condition only on their own key, for
  the same reason;
* operations execute in declared order, so two operations on the same
  key inside one transaction compose deterministically.

:func:`execute` is the *one* executor — replicas run it restricted to
their partition, the serializability checker runs it unrestricted over
a single-copy state, and comparing the two is exactly the one-copy
test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: Operation kinds understood by :func:`execute`.
OP_KINDS = ("get", "put", "incr", "cas")


@dataclass(frozen=True)
class Transaction:
    """One one-shot transaction: id, issuing client, declared ops.

    ``ops`` entries are plain tuples so the transaction serialises
    losslessly through message payloads:

    * ``("get", key)`` — read ``key``;
    * ``("put", key, value)`` — write ``value``;
    * ``("incr", key, delta)`` — add ``delta`` to the integer at
      ``key`` (missing counts as 0);
    * ``("cas", key, expected, value)`` — write ``value`` iff the
      current value equals ``expected`` (missing reads as None).
    """

    txn_id: str
    client: int
    ops: Tuple[Tuple, ...]
    #: Optional per-key route tags: ``((key, gid), ...)`` recording the
    #: group the issuing client addressed each key's ops to.  Static
    #: deployments leave this None (the owner is unambiguous); elastic
    #: deployments (:mod:`repro.reconfig`) stamp it so a replica can
    #: fence a transaction routed under a stale epoch — "this op was
    #: meant for me, but the key has moved" is only decidable when the
    #: intent is on the wire.
    routes: Optional[Tuple[Tuple[str, int], ...]] = None

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError(
                f"transaction {self.txn_id!r} needs at least one operation"
            )
        arity = {"get": 2, "put": 3, "incr": 3, "cas": 4}
        for op in self.ops:
            if not op or op[0] not in OP_KINDS:
                raise ValueError(
                    f"transaction {self.txn_id!r}: unknown op kind in "
                    f"{op!r}; have {list(OP_KINDS)}"
                )
            if len(op) != arity[op[0]]:
                raise ValueError(
                    f"transaction {self.txn_id!r}: malformed {op[0]!r} op "
                    f"{op!r} (expected {arity[op[0]]} fields)"
                )
        if self.routes is not None:
            routed = {key for key, _ in self.routes}
            touched = set(self.keys())
            if routed != touched:
                raise ValueError(
                    f"transaction {self.txn_id!r}: routes cover {sorted(routed)} "
                    f"but ops touch {sorted(touched)}"
                )

    def route_of(self, key: str) -> Optional[int]:
        """The group this key's ops were addressed to (None = untagged)."""
        if self.routes is None:
            return None
        for k, gid in self.routes:
            if k == key:
                return gid
        return None

    # ------------------------------------------------------------------
    # Declared sets (the routing inputs)
    # ------------------------------------------------------------------
    def keys(self) -> Tuple[str, ...]:
        """Every key the transaction touches, first-use order, deduped."""
        seen: Dict[str, None] = {}
        for op in self.ops:
            seen.setdefault(op[1])
        return tuple(seen)

    def read_set(self) -> Tuple[str, ...]:
        """Keys read (``get`` targets plus ``incr``/``cas`` inputs)."""
        seen: Dict[str, None] = {}
        for op in self.ops:
            if op[0] in ("get", "incr", "cas"):
                seen.setdefault(op[1])
        return tuple(seen)

    def write_set(self) -> Tuple[str, ...]:
        """Keys potentially written (``put``/``incr``/``cas`` targets)."""
        seen: Dict[str, None] = {}
        for op in self.ops:
            if op[0] in ("put", "incr", "cas"):
                seen.setdefault(op[1])
        return tuple(seen)

    @property
    def is_read_only(self) -> bool:
        return not self.write_set()

    # ------------------------------------------------------------------
    # Wire format (AppMessage payloads must be plain hashable data)
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple:
        """Untagged transactions keep the legacy 3-tuple byte-for-byte;
        route-tagged ones append the tags as a 4th element."""
        if self.routes is None:
            return (self.txn_id, self.client, self.ops)
        return (self.txn_id, self.client, self.ops, self.routes)

    @classmethod
    def from_payload(cls, payload: tuple) -> "Transaction":
        if len(payload) == 3:
            txn_id, client, ops = payload
            routes = None
        else:
            txn_id, client, ops, routes = payload
            routes = tuple((k, gid) for k, gid in routes)
        return cls(txn_id=txn_id, client=client,
                   ops=tuple(tuple(op) for op in ops), routes=routes)


@dataclass
class TxnEffects:
    """What executing one transaction observed and decided.

    ``reads`` maps op index → value observed by a ``get``;
    ``cas_applied`` maps op index → whether the ``cas`` took effect.
    Only ops whose key passed the ``owned`` filter appear, so a
    replica's effects are exactly the global effects projected onto its
    partition — the identity the serializability checker verifies.
    """

    txn_id: str
    reads: Dict[int, object]
    cas_applied: Dict[int, bool]


def execute(
    txn: Transaction,
    state: Dict[str, object],
    owned: Optional[Callable[[str], bool]] = None,
) -> TxnEffects:
    """Execute ``txn`` over ``state``, mutating it in place.

    ``owned`` filters which keys this executor is responsible for
    (None = all).  Ops on keys outside the filter are skipped entirely;
    because every op touches a single key, the skipped ops cannot
    influence the executed ones, which is what makes the partitioned
    execution equal the global execution projected per partition.
    """
    effects = TxnEffects(txn_id=txn.txn_id, reads={}, cas_applied={})
    for index, op in enumerate(txn.ops):
        kind, key = op[0], op[1]
        if owned is not None and not owned(key):
            continue
        if kind == "get":
            effects.reads[index] = state.get(key)
        elif kind == "put":
            state[key] = op[2]
        elif kind == "incr":
            current = state.get(key, 0)
            if not isinstance(current, int):
                # Deterministic type coercion: a non-integer value
                # resets the counter, identically at every replica.
                current = 0
            state[key] = current + op[2]
        elif kind == "cas":
            applied = state.get(key) == op[2]
            if applied:
                state[key] = op[3]
            effects.cas_applied[index] = applied
    return effects
