"""One-call deployment of the transactional partitioned store.

:class:`StoreCluster` assembles the full serving stack over an already
built (or freshly built) :class:`~repro.runtime.builder.System`: the
partition map, one :class:`TransactionalStore` replica per process, the
client sessions with their shared commit tracker, and the scheduled
transaction workload.  :meth:`attach` is the campaign runner's entry
point — ``ScenarioSpec.store`` scenarios flow through the exact same
construction as direct API users, so a campaign run, an adversary
exploration and a hand-built experiment of the same (spec, seed) are
bit-identical.

The cluster is also the measurement surface for the paper's
genuineness claim: :meth:`involvement` reports per-group protocol
traffic against per-group destination counts, so a committed campaign
artifact can show non-destination groups exchanging *zero* messages
under genuine routing while the broadcast reduction drags every group
into every transaction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.reconfig.balancer import LoadBalancer
from repro.replication.cluster import (
    TappedEndpoint,
    assert_group_convergence,
)
from repro.replication.partition import PartitionMap
from repro.runtime.builder import System, build_system
from repro.store.client import CommitTracker, StoreClient
from repro.store.service import TransactionalStore
from repro.store.spec import StoreSpec
from repro.store.workload import (
    TxnPlan,
    build_partition_map,
    data_group_ids,
    txn_workload,
)


class InvolvementReport:
    """Per-group participation vs addressing, over one finished run."""

    def __init__(self, sent: Dict[int, int], received: Dict[int, int],
                 dest_txns: Dict[int, int], group_ids) -> None:
        self.sent = sent
        self.received = received
        self.dest_txns = dest_txns
        self.group_ids = tuple(group_ids)

    def non_destination_groups(self) -> List[int]:
        """Groups no transaction was addressed to."""
        return [g for g in self.group_ids if not self.dest_txns.get(g)]

    def non_destination_traffic(self) -> int:
        """Message copies sent or received by non-destination groups.

        Zero is the genuineness claim made quantitative: groups outside
        every destination set exchanged no protocol messages at all.
        """
        return sum(self.sent.get(g, 0) + self.received.get(g, 0)
                   for g in self.non_destination_groups())

    def involved_groups(self) -> List[int]:
        """Groups that sent or received at least one message."""
        return [g for g in self.group_ids
                if self.sent.get(g, 0) or self.received.get(g, 0)]


class StoreCluster:
    """A transactional partitioned-store deployment over one system."""

    def __init__(self, system: System, spec: StoreSpec,
                 partition_map: PartitionMap,
                 stores: Dict[int, TransactionalStore],
                 clients: Dict[int, StoreClient],
                 tracker: CommitTracker,
                 plans: List[TxnPlan]) -> None:
        self.system = system
        self.spec = spec
        #: The pristine epoch-0 map (never mutated); each elastic
        #: replica holds its own clone and mutates it at its delivery
        #: points.  Checkers replay the epoch timeline from this one.
        self.partition_map = partition_map
        self.stores = stores
        self.clients = clients
        self.tracker = tracker
        self.plans = plans
        self.data_gids = data_group_ids(spec, system.topology)
        self.balancer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        group_sizes: List[int],
        store: Optional[StoreSpec] = None,
        protocol: str = "a1",
        seed: int = 0,
        **system_kwargs,
    ) -> "StoreCluster":
        """Build a store deployment over any protocol of the registry."""
        system = build_system(protocol=protocol, group_sizes=group_sizes,
                              seed=seed, **system_kwargs)
        return cls.attach(system, store or StoreSpec())

    @classmethod
    def attach(cls, system: System, spec: StoreSpec,
               owned_pids: Optional[frozenset] = None) -> "StoreCluster":
        """Mount the serving layer on a built system and schedule its
        workload; the cluster becomes ``system.store_cluster``.

        ``owned_pids`` restricts *plan scheduling* to transactions whose
        client lives in the set (the structure — stores, clients,
        tracker, full plan list — is always built).  The parallel kernel
        uses this: each per-group sub-kernel schedules only its own
        group's clients, and the never-run host passes an empty set.
        """
        endpoint = system.endpoints[min(system.endpoints)]
        if spec.routing == "genuine" and not hasattr(endpoint, "a_mcast"):
            raise ValueError(
                f"{system.protocol_name} is a broadcast protocol; store "
                f"scenarios over it need StoreSpec(routing='broadcast')"
            )
        topology = system.topology
        pmap = build_partition_map(spec, topology)
        migrating = spec.rebalance_interval > 0
        stores = {
            pid: TransactionalStore(
                system.network.process(pid),
                pmap.clone() if migrating else pmap,
                TappedEndpoint(system, pid), routing=spec.routing,
                service_time=spec.service_time,
                notice_delay=spec.notice_delay,
            )
            for pid in topology.processes
        }
        # Elastic deployments observe commits at execution (execution
        # can lag delivery behind service queues and migration stalls);
        # static ones keep the legacy delivery hook — the two coincide
        # exactly when service_time == 0 and nothing migrates.
        tracker = CommitTracker(
            system, source="execution" if spec.elastic else "delivery")
        if spec.elastic:
            for store in stores.values():
                store.on_execute_hooks.append(tracker.on_executed)
                store.on_reject_hooks.append(tracker.on_rejected)
                store.peer_crashed = (
                    lambda q, _n=system.network: _n.process(q).crashed)
        # Clients live in data groups only: a session in a spectator
        # group would make that group a caster, which genuineness
        # legitimately permits — and the idle-bystander measurement
        # is exactly about keeping spectators off the wire entirely.
        client_pids = [
            pid
            for gid in data_group_ids(spec, topology)
            for pid in topology.members(gid)[:spec.clients_per_group]
        ]
        clients = {pid: StoreClient(stores[pid], tracker,
                                    tag_routes=migrating,
                                    max_retries=spec.max_retries)
                   for pid in client_pids}
        plans = txn_workload(spec, topology, client_pids,
                             system.rng.stream("store-wl"))
        cluster = cls(system, spec, pmap, stores, clients, tracker, plans)
        if migrating:
            for store in stores.values():
                store.bounce_notify = cluster._on_bounce
            if owned_pids is None:
                cluster.balancer = LoadBalancer(
                    cluster, interval=spec.rebalance_interval,
                    threshold=spec.rebalance_threshold,
                    max_keys=spec.rebalance_keys,
                    mode=spec.rebalance_mode,
                )
                cluster.balancer.schedule(spec.start, spec.horizon)
        scheduled = (plans if owned_pids is None
                     else [p for p in plans if p.client in owned_pids])
        for plan in scheduled:
            system.sim.call_at(
                plan.time,
                lambda plan=plan: clients[plan.client].submit(
                    plan.txn_id, plan.ops),
                label=f"txn:{plan.txn_id}",
            )
        system.store_cluster = cluster
        return cluster

    def _on_bounce(self, client_pid: int, txn_id: str, gid: int,
                   keys: tuple, updates: Dict[str, int]) -> None:
        """Deliver a WrongEpoch notice to the issuing client session."""
        client = self.clients.get(client_pid)
        if client is None:
            return
        if self.system.network.process(client_pid).crashed:
            return  # the notice reaches a dead host; nobody retries
        client.on_wrong_epoch(txn_id, gid, keys, updates)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def store(self, pid: int) -> TransactionalStore:
        """The replica hosted by process ``pid``."""
        return self.stores[pid]

    def client(self, pid: int) -> StoreClient:
        """The client session homed at process ``pid``."""
        return self.clients[pid]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def assert_convergence(self) -> None:
        """Every partition's correct replicas hold identical state.

        Failures pinpoint the diverging group, key and per-pid values
        (shared :func:`~repro.replication.cluster.
        assert_group_convergence`).
        """
        assert_group_convergence(
            self.system, lambda pid: self.stores[pid].owned_snapshot())

    def involvement(self) -> InvolvementReport:
        """Per-group sent/received copies and destination counts.

        Requires the system to have been built with ``trace=True`` (the
        campaign runner auto-enables it when the ``involvement`` metric
        family is requested, the same rule genuineness uses).
        """
        trace = self.system.network.trace
        if not trace.enabled:
            raise ValueError(
                "involvement accounting requires a system built with "
                "trace=True"
            )
        topology = self.system.topology
        sent: Dict[int, int] = {}
        received: Dict[int, int] = {}
        for event in trace.events:
            if event.event == "send":
                gid = topology.group_of(event.msg.src)
                sent[gid] = sent.get(gid, 0) + 1
            else:
                gid = topology.group_of(event.msg.dst)
                received[gid] = received.get(gid, 0) + 1
        dest_txns: Dict[int, int] = {}
        for msg in self.system.log.cast_map.values():
            for gid in msg.dest_groups:
                dest_txns[gid] = dest_txns.get(gid, 0) + 1
        return InvolvementReport(sent, received, dest_txns,
                                 topology.group_ids)
