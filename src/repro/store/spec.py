"""Declarative store scenario knobs.

:class:`StoreSpec` plays the role :class:`~repro.campaigns.spec.
WorkloadSpec` plays for plain cast workloads: a frozen, picklable,
JSON-round-trippable bundle of every knob a transactional-store
scenario needs — keyspace size and placement, routing discipline,
client arrival process, and the YCSB-style mix (zipf key popularity,
read fraction, multi-partition ratio).  ``ScenarioSpec.store`` carries
one; the campaign runner sees it and builds a
:class:`~repro.store.cluster.StoreCluster` instead of scheduling plain
casts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.store.service import ROUTINGS

#: Arrival processes for client transactions.
ARRIVALS = ("poisson", "periodic")


@dataclass(frozen=True)
class StoreSpec:
    """Everything a transactional-store scenario needs, as plain data.

    Keyspace: ``n_keys`` keys named ``k00000...``, assigned round-robin
    to ``data_groups`` (None = every group).  Groups outside
    ``data_groups`` replicate nothing — the measurement instrument for
    the genuineness claim: under genuine routing they must stay
    completely idle, under broadcast routing they are dragged into
    every transaction.

    Mix: each transaction touches 1 partition, or (with probability
    ``multi_partition_fraction``) 2..``max_partitions`` distinct ones,
    drawing one zipf-popular key per partition plus extra keys up to
    ``ops_per_txn``; each op is a read with probability
    ``read_fraction``, else a put/incr/cas write.
    """

    n_keys: int = 64
    data_groups: Optional[Tuple[int, ...]] = None
    routing: str = "genuine"
    clients_per_group: int = 1
    # Arrival process of client transactions.
    kind: str = "poisson"
    rate: float = 1.0
    duration: float = 50.0
    period: float = 1.0
    count: int = 50
    start: float = 0.0
    # YCSB-style mix.
    read_fraction: float = 0.5
    multi_partition_fraction: float = 0.25
    max_partitions: int = 2
    ops_per_txn: int = 2
    zipf_skew: float = 1.0

    def __post_init__(self) -> None:
        if self.n_keys < 1:
            raise ValueError(
                f"StoreSpec needs a positive n_keys, got {self.n_keys!r}"
            )
        if self.routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing {self.routing!r}; have {list(ROUTINGS)}"
            )
        if self.kind not in ARRIVALS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; have {list(ARRIVALS)}"
            )
        if self.clients_per_group < 1:
            raise ValueError(
                f"StoreSpec needs a positive clients_per_group, "
                f"got {self.clients_per_group!r}"
            )
        for name in ("read_fraction", "multi_partition_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"StoreSpec {name} must be within [0, 1], got {value!r}"
                )
        if self.max_partitions < 2:
            raise ValueError(
                f"StoreSpec max_partitions must be >= 2, "
                f"got {self.max_partitions!r}"
            )
        if self.ops_per_txn < 1:
            raise ValueError(
                f"StoreSpec needs a positive ops_per_txn, "
                f"got {self.ops_per_txn!r}"
            )
        if self.zipf_skew < 0:
            raise ValueError(
                f"StoreSpec needs a non-negative zipf_skew, "
                f"got {self.zipf_skew!r}"
            )
        if self.kind == "poisson" and self.rate <= 0:
            raise ValueError(
                f"StoreSpec poisson arrivals need a positive rate, "
                f"got {self.rate!r}"
            )
        if self.kind == "periodic":
            if self.period <= 0:
                raise ValueError(
                    f"StoreSpec periodic arrivals need a positive period, "
                    f"got {self.period!r}"
                )
            if self.count < 0:
                raise ValueError(
                    f"StoreSpec periodic arrivals need a non-negative "
                    f"count, got {self.count!r}"
                )

    @property
    def horizon(self) -> float:
        """Virtual time by which every transaction has been issued."""
        if self.kind == "poisson":
            return self.start + self.duration
        return self.start + self.period * max(self.count - 1, 0)

    @classmethod
    def from_dict(cls, data: dict) -> "StoreSpec":
        """Rebuild from JSON-safe plain data (tuples revived)."""
        data = dict(data)
        if data.get("data_groups") is not None:
            data["data_groups"] = tuple(data["data_groups"])
        return cls(**data)
