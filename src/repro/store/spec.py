"""Declarative store scenario knobs.

:class:`StoreSpec` plays the role :class:`~repro.campaigns.spec.
WorkloadSpec` plays for plain cast workloads: a frozen, picklable,
JSON-round-trippable bundle of every knob a transactional-store
scenario needs — keyspace size and placement, routing discipline,
client arrival process, and the YCSB-style mix (zipf key popularity,
read fraction, multi-partition ratio).  ``ScenarioSpec.store`` carries
one; the campaign runner sees it and builds a
:class:`~repro.store.cluster.StoreCluster` instead of scheduling plain
casts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.store.service import ROUTINGS

#: Arrival processes for client transactions.
ARRIVALS = ("poisson", "periodic")

#: Key placement disciplines: pin every key round-robin (legacy), or
#: let the consistent-hash ring over the data groups own the keys.
PLACEMENTS = ("explicit", "ring")

#: Load-balancing strategies (mirrors repro.reconfig.balancer.MODES).
REBALANCE_MODES = ("split", "merge")

#: Key-popularity scopes.  "partition" applies the zipf law within each
#: partition and picks partitions uniformly — per-group load stays flat
#: by construction (the legacy YCSB-style mix).  "global" applies one
#: zipf law over the whole keyspace and picks partitions weighted by
#: the popularity mass of the keys they own — the partitions holding
#: globally-hot keys become hot, the skew elastic repartitioning
#: exists to relieve.
POPULARITIES = ("partition", "global")


@dataclass(frozen=True)
class StoreSpec:
    """Everything a transactional-store scenario needs, as plain data.

    Keyspace: ``n_keys`` keys named ``k00000...``, assigned round-robin
    to ``data_groups`` (None = every group).  Groups outside
    ``data_groups`` replicate nothing — the measurement instrument for
    the genuineness claim: under genuine routing they must stay
    completely idle, under broadcast routing they are dragged into
    every transaction.

    Mix: each transaction touches 1 partition, or (with probability
    ``multi_partition_fraction``) 2..``max_partitions`` distinct ones,
    drawing one zipf-popular key per partition plus extra keys up to
    ``ops_per_txn``; each op is a read with probability
    ``read_fraction``, else a put/incr/cas write.
    """

    n_keys: int = 64
    data_groups: Optional[Tuple[int, ...]] = None
    routing: str = "genuine"
    clients_per_group: int = 1
    # Arrival process of client transactions.
    kind: str = "poisson"
    rate: float = 1.0
    duration: float = 50.0
    period: float = 1.0
    count: int = 50
    start: float = 0.0
    # YCSB-style mix.
    read_fraction: float = 0.5
    multi_partition_fraction: float = 0.25
    max_partitions: int = 2
    ops_per_txn: int = 2
    zipf_skew: float = 1.0
    #: Scope of the zipf law: "partition" (legacy, flat per-group load)
    #: or "global" (hot keys make their owner groups hot).
    popularity: str = "partition"
    # Elastic repartitioning (repro.reconfig).  The defaults keep every
    # existing scenario byte-identical: explicit placement, no service
    # queue, no balancer.
    placement: str = "explicit"
    ring_vnodes: int = 64
    #: Per-replica serial execution cost per transaction (0 = execute
    #: at delivery, the legacy behaviour).  Positive values make hot
    #: partitions queue — the effect rebalancing exists to relieve.
    service_time: float = 0.0
    #: Load-balancer tick period (0 = no balancer).
    rebalance_interval: float = 0.0
    rebalance_threshold: float = 2.0
    rebalance_keys: int = 8
    rebalance_mode: str = "split"
    #: Modeled latency of a WrongEpoch bounce notice back to a client.
    notice_delay: float = 1.0
    #: Retry budget per fenced transaction before the client gives up.
    max_retries: int = 5

    def __post_init__(self) -> None:
        if self.n_keys < 1:
            raise ValueError(
                f"StoreSpec needs a positive n_keys, got {self.n_keys!r}"
            )
        if self.routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing {self.routing!r}; have {list(ROUTINGS)}"
            )
        if self.kind not in ARRIVALS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; have {list(ARRIVALS)}"
            )
        if self.clients_per_group < 1:
            raise ValueError(
                f"StoreSpec needs a positive clients_per_group, "
                f"got {self.clients_per_group!r}"
            )
        for name in ("read_fraction", "multi_partition_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"StoreSpec {name} must be within [0, 1], got {value!r}"
                )
        if self.max_partitions < 2:
            raise ValueError(
                f"StoreSpec max_partitions must be >= 2, "
                f"got {self.max_partitions!r}"
            )
        if self.ops_per_txn < 1:
            raise ValueError(
                f"StoreSpec needs a positive ops_per_txn, "
                f"got {self.ops_per_txn!r}"
            )
        if self.zipf_skew < 0:
            raise ValueError(
                f"StoreSpec needs a non-negative zipf_skew, "
                f"got {self.zipf_skew!r}"
            )
        if self.kind == "poisson" and self.rate <= 0:
            raise ValueError(
                f"StoreSpec poisson arrivals need a positive rate, "
                f"got {self.rate!r}"
            )
        if self.kind == "periodic":
            if self.period <= 0:
                raise ValueError(
                    f"StoreSpec periodic arrivals need a positive period, "
                    f"got {self.period!r}"
                )
            if self.count < 0:
                raise ValueError(
                    f"StoreSpec periodic arrivals need a non-negative "
                    f"count, got {self.count!r}"
                )
        if self.popularity not in POPULARITIES:
            raise ValueError(
                f"unknown popularity {self.popularity!r}; "
                f"have {list(POPULARITIES)}"
            )
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"have {list(PLACEMENTS)}"
            )
        if self.ring_vnodes < 1:
            raise ValueError(
                f"StoreSpec needs a positive ring_vnodes, "
                f"got {self.ring_vnodes!r}"
            )
        if self.service_time < 0:
            raise ValueError(
                f"StoreSpec needs a non-negative service_time, "
                f"got {self.service_time!r}"
            )
        if self.rebalance_interval < 0:
            raise ValueError(
                f"StoreSpec needs a non-negative rebalance_interval, "
                f"got {self.rebalance_interval!r}"
            )
        if self.rebalance_interval > 0 and self.routing != "genuine":
            raise ValueError(
                "rebalancing needs routing='genuine': reconfig "
                "transactions are multicast to exactly {src, dst}"
            )
        if self.rebalance_threshold < 1.0:
            raise ValueError(
                f"StoreSpec rebalance_threshold must be >= 1.0, "
                f"got {self.rebalance_threshold!r}"
            )
        if self.rebalance_keys < 1:
            raise ValueError(
                f"StoreSpec needs a positive rebalance_keys, "
                f"got {self.rebalance_keys!r}"
            )
        if self.rebalance_mode not in REBALANCE_MODES:
            raise ValueError(
                f"unknown rebalance_mode {self.rebalance_mode!r}; "
                f"have {list(REBALANCE_MODES)}"
            )
        if self.notice_delay < 0:
            raise ValueError(
                f"StoreSpec needs a non-negative notice_delay, "
                f"got {self.notice_delay!r}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"StoreSpec needs a non-negative max_retries, "
                f"got {self.max_retries!r}"
            )

    @property
    def elastic(self) -> bool:
        """Does this spec enable any elastic-repartitioning machinery?"""
        return self.rebalance_interval > 0 or self.service_time > 0

    @property
    def horizon(self) -> float:
        """Virtual time by which every transaction has been issued."""
        if self.kind == "poisson":
            return self.start + self.duration
        return self.start + self.period * max(self.count - 1, 0)

    @classmethod
    def from_dict(cls, data: dict) -> "StoreSpec":
        """Rebuild from JSON-safe plain data (tuples revived)."""
        data = dict(data)
        if data.get("data_groups") is not None:
            data["data_groups"] = tuple(data["data_groups"])
        return cls(**data)
