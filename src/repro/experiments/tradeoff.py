"""The introduction's latency/message-complexity tradeoff, measured.

Paper, Section 1: *"Consider a partial replication scenario where each
group replicates a set of objects.  If latency is the main concern,
then every operation should be broadcast to all groups ... this
solution, however, has a high message complexity ...  To reduce the
message complexity, genuine multicast can be used.  However, any
genuine multicast algorithm will have a latency degree of at least
two."*

We run the same partial-replication workload — operations addressed to
k of G groups — through:

* **Algorithm A1** (genuine): only the k destination groups work;
* **broadcast-to-all over Algorithm A2** (non-genuine): every group
  sees every operation, destinations filter on delivery.

and report, per protocol: steady-state latency degree, total inter-group
messages, and how many messages were handled by processes that were not
addressees (the waste genuineness eliminates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    uniform_k_groups,
)


@dataclass
class TradeoffPoint:
    """Measurements for one protocol on the shared workload."""

    protocol: str
    messages: int
    best_degree: int
    mean_degree: float
    inter_msgs_per_op: float
    discarded_deliveries: int


def run_tradeoff(
    protocol: str,
    groups: int = 6,
    d: int = 2,
    k: int = 2,
    seed: int = 1,
    rate: float = 0.8,
    duration: float = 25.0,
) -> TradeoffPoint:
    """One protocol on the k-of-G partial replication workload."""
    kwargs = {"propose_delay": 0.3} if protocol == "nongenuine" else {}
    system = build_system(protocol=protocol, group_sizes=[d] * groups,
                          seed=seed, **kwargs)
    system.start_rounds()
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"), rate=rate,
        duration=duration, destinations=uniform_k_groups(k),
    )
    msgs = schedule_workload(system, plans)
    system.run_quiescent()

    degrees = [system.meter.latency_degree(m.mid) for m in msgs]
    degrees = [x for x in degrees if x is not None]
    # Application-level deliveries discarded at non-addressees — the
    # waste broadcast-to-all pays and genuineness eliminates by design.
    discarded = sum(
        getattr(endpoint, "discarded_deliveries", 0)
        for endpoint in system.endpoints.values()
    )
    return TradeoffPoint(
        protocol=protocol,
        messages=len(degrees),
        best_degree=min(degrees) if degrees else -1,
        mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
        inter_msgs_per_op=system.inter_group_messages / max(len(msgs), 1),
        discarded_deliveries=discarded,
    )


def tradeoff_table(groups: int = 6, d: int = 2, k: int = 2,
                   seed: int = 1) -> str:
    """Render the genuine-vs-broadcast comparison."""
    rows: List[Row] = []
    for protocol in ("a1", "nongenuine"):
        point = run_tradeoff(protocol, groups=groups, d=d, k=k, seed=seed)
        label = ("A1 (genuine multicast)" if protocol == "a1"
                 else "A2 broadcast-to-all")
        rows.append(Row(
            label=label,
            values=[point.messages, point.best_degree,
                    f"{point.mean_degree:.2f}",
                    f"{point.inter_msgs_per_op:.1f}",
                    point.discarded_deliveries],
        ))
    return format_table(
        f"Introduction tradeoff — ops to k={k} of {groups} groups "
        f"(d={d})",
        ["protocol", "ops", "best deg", "mean deg", "inter/op",
         "discarded delivs"],
        rows,
        note=("Genuine A1 can never beat latency degree 2 but keeps "
              "bystander groups idle; broadcast-to-all reaches degree 1 "
              "at the cost of dragging every process into every "
              "operation (non-zero bystander column and higher "
              "inter-group traffic per op as the group count grows)."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(tradeoff_table())


if __name__ == "__main__":  # pragma: no cover
    main()
