"""Quiescence-prediction strategy comparison (paper §5.3 extension).

The paper's closing remark — bursty or slow traffic makes the default
"stop after one empty round" rule stop prematurely, and "more elaborate
prediction strategies based on application behavior could be used" —
turned into a measured experiment.

A bursty workload (clumps of broadcasts separated by idle gaps) runs
through Algorithm A2 under three predictors:

* the paper's rule (stop on first empty round);
* a static linger (keep N empty rounds alive);
* a rate-adaptive linger (EWMA of observed inter-arrival gaps).

Reported per strategy: fraction of messages that paid the quiescence
restart (degree >= 2), empty rounds executed (the cost of lingering),
and mean delivery latency.  The tradeoff curve is the deliverable: more
lingering converts restart penalties into idle-round overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.prediction import (
    LingerPredictor,
    PaperPredictor,
    RateAdaptivePredictor,
)
from repro.net.topology import LatencyModel
from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table
from repro.workload.generators import burst_workload, schedule_workload


@dataclass
class PredictionPoint:
    """One strategy's measurements on the shared bursty workload."""

    strategy: str
    messages: int
    wakeups: int                # restarts from the reactive state
    empty_rounds: int           # wasted proactive rounds
    mean_latency_ms: float


def run_strategy(
    name: str,
    predictor_factory: Optional[Callable],
    seed: int = 1,
    bursts: int = 6,
    burst_size: int = 4,
    gap_ms: float = 1_500.0,
) -> PredictionPoint:
    """One predictor against the bursty workload (time unit = ms)."""
    kwargs = {}
    if predictor_factory is not None:
        kwargs["predictor_factory"] = predictor_factory
    system = build_system(
        protocol="a2", group_sizes=[3, 3], seed=seed,
        latency=LatencyModel.wan(intra_ms=1.0, inter_ms=100.0,
                                 inter_jitter_ms=2.0),
        propose_delay=5.0, **kwargs,
    )
    plans = burst_workload(
        system.topology, system.rng.stream("wl"), bursts=bursts,
        burst_size=burst_size, gap=gap_ms, spread=120.0,
    )
    messages = schedule_workload(system, plans)
    system.run_quiescent()

    latencies = [
        system.meter.record_for(m.mid).mean_delivery_latency
        for m in messages
        if system.meter.record_for(m.mid).mean_delivery_latency is not None
    ]
    endpoint = system.endpoints[0]
    wakeups = sum(ep.wakeups for ep in system.endpoints.values()
                  if hasattr(ep, "wakeups"))
    return PredictionPoint(
        strategy=name,
        messages=len(messages),
        wakeups=wakeups,
        empty_rounds=endpoint.rounds_executed - endpoint.useful_rounds,
        mean_latency_ms=(sum(latencies) / len(latencies)
                         if latencies else 0.0),
    )


STRATEGIES = [
    # Rounds take ~110 ms here, so linger 5 covers ~0.55 s of idle time
    # (too short for the 1.5 s burst gaps) and linger 20 covers ~2.2 s
    # (bridges them).
    ("paper (stop on empty)", PaperPredictor),
    ("linger 5 rounds", lambda: LingerPredictor(linger_rounds=5)),
    ("linger 20 rounds", lambda: LingerPredictor(linger_rounds=20)),
    ("rate-adaptive", lambda: RateAdaptivePredictor(patience=4.0)),
]


def run_all(seed: int = 1) -> List[PredictionPoint]:
    """All strategies on the same workload."""
    return [run_strategy(name, factory, seed=seed)
            for name, factory in STRATEGIES]


def prediction_table(seed: int = 1) -> str:
    """Render the strategy comparison."""
    rows = [
        Row(label=p.strategy,
            values=[p.messages, p.wakeups,
                    p.empty_rounds, f"{p.mean_latency_ms:.0f}"])
        for p in run_all(seed)
    ]
    return format_table(
        "Quiescence prediction strategies (paper §5.3 extension) — "
        "bursty workload, 1.5 s idle gaps",
        ["strategy", "msgs", "wakeups", "empty rounds", "mean lat (ms)"],
        rows,
        note=("A wakeup is a round started from the reactive state — a "
              "prediction mistake; every message forcing one is a "
              "Theorem 5.2 situation (latency degree >= 2 guaranteed). "
              "Lingering trades idle-round overhead for fewer wakeups; "
              "the rate-adaptive predictor approaches the long linger's "
              "wakeup count at a fraction of its idle rounds once it "
              "has learned the burst gap."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(prediction_table())


if __name__ == "__main__":  # pragma: no cover
    main()
