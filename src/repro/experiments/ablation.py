"""Ablation: what A1's stage skipping buys over Fritzke et al. [5].

Paper Section 4.1 lists A1's two optimisations:

1. messages addressed to a single group jump s0 → s3 (no timestamp
   exchange, no second consensus);
2. a group whose proposal equals the final timestamp skips s2 (no
   second consensus there either);

plus the switch from uniform to non-uniform reliable multicast.  The
paper's claim (Section 6): *"This has no impact on the latency degree
or on the number of inter-group messages sent ... However, our
algorithm sends fewer intra-group messages."*

We run the same mostly-local workload through A1, A1 with skipping
disabled, and full [5] (no skipping + uniform rmcast), and report
latency degrees and message counts — the claim shows up as equal
degrees, (near-)equal inter-group counts and a strictly decreasing
intra-group count as each optimisation is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table
from repro.workload.generators import (
    poisson_workload,
    schedule_workload,
    zipf_group_count,
)


@dataclass
class AblationPoint:
    """One variant's measurements on the shared workload."""

    variant: str
    messages: int
    multi_group_degree: int
    inter_msgs: int
    intra_msgs: int


def run_variant(protocol: str, seed: int = 1, groups: int = 3, d: int = 3,
                rate: float = 0.6, duration: float = 20.0) -> AblationPoint:
    """One variant on a Zipf-local workload (most messages 1 group)."""
    system = build_system(protocol=protocol, group_sizes=[d] * groups,
                          seed=seed)
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"), rate=rate,
        duration=duration, destinations=zipf_group_count(groups),
    )
    msgs = schedule_workload(system, plans)
    system.run_quiescent()
    multi = [system.meter.latency_degree(m.mid) for m in msgs
             if len(m.dest_groups) > 1]
    multi = [x for x in multi if x is not None]
    return AblationPoint(
        variant=protocol,
        messages=len(msgs),
        multi_group_degree=min(multi) if multi else -1,
        inter_msgs=system.inter_group_messages,
        intra_msgs=system.intra_group_messages,
    )


def ablation_table(seed: int = 1) -> str:
    """Render the three-variant comparison."""
    labels = {
        "a1": "A1 (both optimisations)",
        "a1-noskip": "A1 minus stage skipping",
        "fritzke": "[5] (no skip + uniform rmcast)",
    }
    rows: List[Row] = []
    for protocol in ("a1", "a1-noskip", "fritzke"):
        p = run_variant(protocol, seed=seed)
        rows.append(Row(
            label=labels[protocol],
            values=[p.messages, p.multi_group_degree, p.inter_msgs,
                    p.intra_msgs],
        ))
    return format_table(
        "Ablation — A1's stage skipping vs Fritzke et al. [5]",
        ["variant", "msgs", "multi-grp deg", "inter msgs", "intra msgs"],
        rows,
        note=("Paper §6: skipping changes neither the latency degree nor "
              "the inter-group message count, but saves consensus "
              "instances — visible as the intra-group column growing as "
              "optimisations are removed."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(ablation_table())


if __name__ == "__main__":  # pragma: no cover
    main()
