"""Heterogeneous WAN: where the latency degree stops telling the story.

The paper's closing remark on Figure 1: *"Deciding which algorithm is
best is not straightforward as it depends on factors such as the
network topology as well as the latencies and bandwidths of links."*

This experiment makes that concrete.  On a three-continent topology
with asymmetric one-way delays (EU-NA 45 ms, NA-ASIA 75 ms, EU-ASIA
90 ms), two algorithms with *adjacent* Figure 1a rows behave very
differently in wall-clock terms:

* **A1** (degree 2) pays ``2 × slowest link`` regardless of which
  groups a message touches — its hops run in parallel;
* **the ring [4]** (degree k) pays the *sum* of the links along the
  ring — sequential handoffs accumulate, and the group ordering decides
  which links appear in the sum.

We measure worst-replica delivery latency per destination pair and for
all three groups, A1 vs ring, and report the ratio — the concrete
"which algorithm is best depends on the topology" of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.topology import Jittered, LatencyModel
from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table


def three_continent_latency(jitter: float = 0.0) -> LatencyModel:
    """EU(0) - NA(1) - ASIA(2) one-way delays in milliseconds."""
    legs = {(0, 1): 45.0, (0, 2): 90.0, (1, 2): 75.0}
    pairwise = {}
    for (a, b), ms in legs.items():
        pairwise[(a, b)] = Jittered(ms, jitter)
        pairwise[(b, a)] = Jittered(ms, jitter)
    return LatencyModel(intra=Jittered(0.5, jitter / 10 if jitter else 0.0),
                        inter=Jittered(100.0, jitter),
                        pairwise_inter=pairwise)


@dataclass
class PairPoint:
    """Latency of one destination set under one protocol."""

    protocol: str
    dest: Tuple[int, ...]
    degree: int
    worst_latency_ms: float


def measure(protocol: str, dest: Tuple[int, ...], seed: int = 1,
            sender_gid: int = None) -> PairPoint:
    """One multicast to ``dest``, measured on the continent topology."""
    system = build_system(protocol=protocol, group_sizes=[3, 3, 3],
                          seed=seed, latency=three_continent_latency())
    sender_gid = dest[0] if sender_gid is None else sender_gid
    sender = system.topology.members(sender_gid)[0]
    msg = system.cast(sender=sender, dest_groups=dest)
    system.run_quiescent()
    rec = system.meter.record_for(msg.mid)
    return PairPoint(
        protocol=protocol,
        dest=dest,
        degree=rec.latency_degree,
        worst_latency_ms=rec.worst_delivery_latency,
    )


DEST_SETS = [(0, 1), (0, 2), (1, 2), (0, 1, 2)]
DEST_NAMES = {(0, 1): "EU+NA (45ms leg)", (0, 2): "EU+ASIA (90ms leg)",
              (1, 2): "NA+ASIA (75ms leg)", (0, 1, 2): "all three"}


def heterogeneity_table(seed: int = 1) -> str:
    """A1 vs ring [4], per destination set, on the continent WAN."""
    rows: List[Row] = []
    for dest in DEST_SETS:
        a1 = measure("a1", dest, seed)
        ring = measure("ring", dest, seed)
        rows.append(Row(
            label=DEST_NAMES[dest],
            values=[a1.degree, f"{a1.worst_latency_ms:.0f}",
                    ring.degree, f"{ring.worst_latency_ms:.0f}",
                    f"{ring.worst_latency_ms / a1.worst_latency_ms:.2f}x"],
        ))
    return format_table(
        "Heterogeneous WAN (EU-NA 45ms, NA-ASIA 75ms, EU-ASIA 90ms) — "
        "A1 vs ring [4]",
        ["destinations", "A1 deg", "A1 ms", "ring deg", "ring ms",
         "ring/A1"],
        rows,
        note=("A1's two hops run in parallel (cost ~= 2x the slowest "
              "leg); the ring's handoffs are sequential (cost ~= the "
              "sum of the legs on the ring path), so its penalty grows "
              "with the destination count and the leg asymmetry — the "
              "paper's 'which algorithm is best depends on the "
              "topology'."),
    )


def collect_points(seed: int = 1) -> Dict[str, Dict[Tuple[int, ...],
                                                    PairPoint]]:
    """Raw points for the benchmark assertions."""
    return {
        protocol: {dest: measure(protocol, dest, seed)
                   for dest in DEST_SETS}
        for protocol in ("a1", "ring")
    }


def main() -> None:  # pragma: no cover - CLI convenience
    print(heterogeneity_table())


if __name__ == "__main__":  # pragma: no cover
    main()
