"""Empirical companion to the Section 3 lower bounds.

Proposition 3.1 + 3.2: **no genuine atomic multicast can deliver a
message addressed to at least two groups with latency degree < 2.**
A lower bound cannot be *proven* by experiment, but it can be
stress-tested: we sweep every genuine multicast implementation in the
repository across seeds, topologies, casters and destination counts,
searching for a counterexample run with Δ < 2.  The search must come
back empty (min observed degree = 2) — and for the non-genuine
multicast (broadcast-based) it must NOT come back empty (degree 1 runs
exist), confirming the bound is about genuineness, not a limitation of
our harness.

Proposition 3.3 + Theorem 5.2: every quiescent broadcast pays degree 2
for a message cast after quiescence.  We sweep idle gaps and confirm
the late messages never beat 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table

GENUINE_MULTICASTS = ("a1", "a1-noskip", "skeen", "fritzke", "ring", "global")


@dataclass
class BoundSearch:
    """Result of a counterexample search for one protocol."""

    protocol: str
    runs: int = 0
    min_degree: int = 10 ** 9
    degrees: Dict[int, int] = field(default_factory=dict)  # degree -> count

    def record(self, degree: int) -> None:
        self.runs += 1
        self.min_degree = min(self.min_degree, degree)
        self.degrees[degree] = self.degrees.get(degree, 0) + 1


def search_genuine_counterexamples(
    protocol: str,
    seeds=range(10),
    topologies=((2, 2), (3, 3), (2, 3, 2)),
    cast_offsets=(0.0, 0.3, 0.7, 1.3),
) -> BoundSearch:
    """Hunt for a Δ < 2 delivery of a ≥2-group message."""
    result = BoundSearch(protocol=protocol)
    for seed in seeds:
        for sizes in topologies:
            groups = len(sizes)
            for offset in cast_offsets:
                for sender_gid in range(groups):
                    system = build_system(protocol=protocol,
                                          group_sizes=list(sizes), seed=seed)
                    sender = system.topology.members(sender_gid)[0]
                    dest = (0, 1) if groups == 2 else (0, 1, 2)[:2 + seed % 2]
                    msg = system.cast_at(offset, sender, dest)
                    system.run_quiescent()
                    degree = system.meter.latency_degree(msg.mid)
                    assert degree is not None, "message not delivered"
                    result.record(degree)
    return result


def search_nongenuine_witness(seeds=range(5)) -> BoundSearch:
    """Show the bound does not apply without genuineness: find Δ = 1."""
    result = BoundSearch(protocol="nongenuine")
    for seed in seeds:
        system = build_system(protocol="nongenuine", group_sizes=[2, 2],
                              seed=seed, propose_delay=0.05)
        system.start_rounds()
        msg = system.cast_at(0.01, 0, (0, 1))
        system.run_quiescent()
        degree = system.meter.latency_degree(msg.mid)
        assert degree is not None
        result.record(degree)
    return result


def search_quiescence_cost(
    protocol: str = "a2", seeds=range(5), gaps=(50.0, 100.0, 500.0)
) -> BoundSearch:
    """Messages cast after quiescence never beat degree 2 (Prop 3.3)."""
    result = BoundSearch(protocol=f"{protocol} (post-quiescence)")
    for seed in seeds:
        for gap in gaps:
            system = build_system(protocol=protocol, group_sizes=[3, 3],
                                  seed=seed)
            system.cast(sender=0)             # prime, then go quiet
            probe = system.cast_at(gap, 3)
            system.run_quiescent()
            degree = system.meter.latency_degree(probe.mid)
            assert degree is not None
            result.record(degree)
    return result


def lower_bound_table() -> str:
    """Render the whole counterexample hunt."""
    rows: List[Row] = []
    for protocol in GENUINE_MULTICASTS:
        search = search_genuine_counterexamples(protocol)
        rows.append(Row(
            label=protocol,
            values=[search.runs, search.min_degree,
                    "bound holds" if search.min_degree >= 2 else "VIOLATED"],
        ))
    witness = search_nongenuine_witness()
    rows.append(Row(
        label="nongenuine (control)",
        values=[witness.runs, witness.min_degree,
                "degree 1 exists" if witness.min_degree == 1 else
                "control failed"],
    ))
    quiesce = search_quiescence_cost()
    rows.append(Row(
        label=quiesce.protocol,
        values=[quiesce.runs, quiesce.min_degree,
                "bound holds" if quiesce.min_degree >= 2 else "VIOLATED"],
    ))
    return format_table(
        "Section 3 lower bounds — counterexample search",
        ["protocol", "runs", "min degree", "verdict"],
        rows,
        note=("Genuine multicast never beats 2 (Prop 3.1/3.2); the "
              "broadcast-based control shows degree 1 is reachable once "
              "genuineness is dropped; post-quiescence broadcasts never "
              "beat 2 (Prop 3.3 / Thm 5.2)."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(lower_bound_table())


if __name__ == "__main__":  # pragma: no cover
    main()
