"""The paper's constructive theorem runs (Theorems 4.1, 5.1, 5.2).

Each function builds the exact run sketched in the paper's appendix and
returns the measured latency degree, which the benchmarks assert equals
the theorem's value:

* **Theorem 4.1** — Algorithm A1 delivers a message multicast to two
  groups with Δ(m, R) = 2.
* **Theorem 5.1** — Algorithm A2 delivers a broadcast with Δ(m, R) = 1
  when the message rides an already-running round.
* **Theorem 5.2** — when the last message is broadcast after the system
  has become quiescent (processes are *reactive*), Algorithm A2
  delivers it with Δ(m, R) = 2 — the unavoidable quiescence cost of the
  Section 3 lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table


@dataclass
class TheoremRun:
    """One theorem's constructed run and its measurement."""

    theorem: str
    claim: int
    measured: Optional[int]

    @property
    def matches(self) -> bool:
        return self.measured == self.claim


def theorem_4_1(seed: int = 1) -> TheoremRun:
    """A1, two groups, one multicast to both: Δ = 2."""
    system = build_system(protocol="a1", group_sizes=[3, 3], seed=seed)
    msg = system.cast(sender=0, dest_groups=(0, 1))
    system.run_quiescent()
    return TheoremRun("4.1 (A1 optimal)", 2,
                      system.meter.latency_degree(msg.mid))


def theorem_5_1(seed: int = 1) -> TheoremRun:
    """A2, warm rounds, broadcast rides round r+1: Δ = 1.

    The paper's run: "let r be a round where some message was
    A-Delivered; hence all processes start round r+1" — we warm the
    pipeline with ``start_rounds`` and broadcast while round 1's
    bundling window is open.
    """
    system = build_system(protocol="a2", group_sizes=[3, 3], seed=seed,
                          propose_delay=0.05)
    system.start_rounds()
    msg = system.cast_at(0.01, 0)
    system.run_quiescent()
    return TheoremRun("5.1 (A2 degree 1)", 1,
                      system.meter.latency_degree(msg.mid))


def theorem_5_2(seed: int = 1) -> TheoremRun:
    """A2, quiescent system, late broadcast: Δ = 2.

    A priming message makes the system run (and finish) its rounds;
    long after it goes silent, the probe message must wake every group
    up again — one hop to push the caster's bundle out, one hop for the
    other groups' answering bundles.
    """
    system = build_system(protocol="a2", group_sizes=[3, 3], seed=seed)
    system.cast(sender=0)            # priming traffic
    probe = system.cast_at(200.0, 3)  # cast after full quiescence
    system.run_quiescent()
    return TheoremRun("5.2 (quiescence cost)", 2,
                      system.meter.latency_degree(probe.mid))


def run_all(seed: int = 1) -> List[TheoremRun]:
    """All three constructive runs."""
    return [theorem_4_1(seed), theorem_5_1(seed), theorem_5_2(seed)]


def theorem_table(seed: int = 1) -> str:
    """Render the theorem-by-theorem comparison."""
    rows = [
        Row(label=run.theorem,
            values=[run.claim, run.measured,
                    "ok" if run.matches else "MISMATCH"])
        for run in run_all(seed)
    ]
    return format_table(
        "Constructive theorem runs (paper appendix A.1/A.2)",
        ["theorem", "claimed deg", "measured deg", "status"],
        rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(theorem_table())


if __name__ == "__main__":  # pragma: no cover
    main()
