"""Experiment harnesses regenerating every paper artefact.

=============== =======================================================
module           paper artefact
=============== =======================================================
``figure1``      Figure 1(a) and 1(b): protocol comparison tables
``theorems``     Theorems 4.1, 5.1, 5.2: constructive latency runs
``lower_bounds`` Propositions 3.1-3.3: counterexample searches
``rate_sweep``   Section 5.3: broadcast rate vs round usefulness
``tradeoff``     Section 1: genuine multicast vs broadcast-to-all
``ablation``     Sections 4.1/6: stage skipping vs Fritzke et al. [5]
``prediction``   §5.3 extension: quiescence prediction strategies
``wan_heterogeneity`` §6 remark: topology decides the best algorithm
=============== =======================================================

Each module exposes ``main()`` (prints the table) plus granular
functions the benchmark suite calls and asserts on.
"""

from repro.experiments import (  # noqa: F401
    ablation,
    prediction,
    wan_heterogeneity,
    figure1,
    lower_bounds,
    rate_sweep,
    scalability,
    theorems,
    tradeoff,
)

__all__ = ["ablation", "figure1", "lower_bounds", "prediction",
           "rate_sweep", "scalability", "theorems", "tradeoff",
           "wan_heterogeneity"]
