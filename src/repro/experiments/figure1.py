"""Figure 1 regeneration: the paper's protocol comparison tables.

Figure 1(a) compares atomic **multicast** algorithms, Figure 1(b)
atomic **broadcast** algorithms, on two columns each:

* latency degree (best case, failure-free), and
* number of inter-group messages.

The paper derives its numbers analytically from the oracle-based
substrate costs of [6] (reliable multicast, ``d(k-1)`` inter-group
messages) and [11] (consensus, ``2kd(kd-1)`` when run across k groups).
We *measure* both columns on real runs of our implementations and print
them next to the paper's formulas, so the table can be eyeballed row by
row.  Absolute counts differ slightly from the formulas (e.g. ours
include the initial cast copy); the asymptotic shape and the ranking
must match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table
from repro.workload.generators import periodic_workload, schedule_workload


@dataclass
class ComparisonResult:
    """One protocol's measured row."""

    protocol: str
    paper_degree: str
    measured_degree: Optional[int]
    paper_msgs: str
    measured_inter_msgs: float


# ----------------------------------------------------------------------
# Figure 1(a): atomic multicast
# ----------------------------------------------------------------------
def run_fig1a_single(protocol: str, k: int, d: int,
                     seed: int = 1) -> ComparisonResult:
    """One multicast to k groups of d processes; measure the columns."""
    paper = {
        "ring": (f"k+1 = {k + 1}", "O(kd^2)"),
        "global": ("4", "O(k^2 d^2)"),
        "fritzke": ("2", "O(k^2 d^2)"),
        "a1": ("2", "O(k^2 d^2)"),
        "skeen": ("2", "O(k^2 d^2)"),
    }
    sizes = [d] * max(k, 2)
    system = build_system(protocol=protocol, group_sizes=sizes, seed=seed)
    msg = system.cast(sender=0, dest_groups=tuple(range(k)))
    system.run_quiescent()
    degree, msgs = paper[protocol]
    return ComparisonResult(
        protocol=protocol,
        paper_degree=degree,
        measured_degree=system.meter.latency_degree(msg.mid),
        paper_msgs=msgs,
        measured_inter_msgs=system.inter_group_messages,
    )


def fig1a_table(k: int = 2, d: int = 3, seed: int = 1) -> str:
    """Render Figure 1(a) for one (k, d) point."""
    rows = []
    for protocol in ("ring", "global", "fritzke", "a1", "skeen"):
        r = run_fig1a_single(protocol, k, d, seed)
        rows.append(Row(
            label=_LABELS[protocol],
            values=[r.paper_degree, r.measured_degree,
                    r.paper_msgs, int(r.measured_inter_msgs)],
        ))
    return format_table(
        f"Figure 1(a) — atomic multicast, k={k} destination groups, "
        f"d={d} processes/group",
        ["algorithm", "paper deg", "meas deg", "paper msgs", "meas inter"],
        rows,
        note=("Skeen is the failure-free classic; the paper's corollary is "
              "that its degree of 2 is optimal.  Ring ([4]) trades latency "
              "for O(kd^2) messages; our caster sits in the first ring "
              "group, so it measures k where the paper counts k+1."),
    )


def fig1a_sweep(ks=(2, 3, 4), d: int = 2, seed: int = 1
                ) -> Dict[str, Dict[int, ComparisonResult]]:
    """Measure every multicast protocol across destination counts."""
    out: Dict[str, Dict[int, ComparisonResult]] = {}
    for protocol in ("ring", "global", "fritzke", "a1", "skeen"):
        out[protocol] = {k: run_fig1a_single(protocol, k, d, seed)
                         for k in ks}
    return out


# ----------------------------------------------------------------------
# Figure 1(b): atomic broadcast
# ----------------------------------------------------------------------
def run_fig1b_single(protocol: str, groups: int, d: int, seed: int = 1,
                     messages: int = 12) -> ComparisonResult:
    """Sustained broadcast workload; measure degree and amortised cost.

    Broadcast protocols amortise infrastructure traffic (rounds, slots)
    across messages, so the message column is inter-group messages per
    application message over a steady workload.
    """
    n = groups * d
    paper = {
        "optimistic": ("2", "O(n)"),
        "sequencer": ("2", "O(n^2)"),
        "a2": ("1", "O(n^2)"),
        "detmerge": ("1", "O(n)"),
    }
    kwargs = {"propose_delay": 0.05} if protocol == "a2" else {}
    system = build_system(protocol=protocol, group_sizes=[d] * groups,
                          seed=seed, **kwargs)
    system.start_rounds()
    # Round-robin senders from outside group 0, so sequencer-based
    # protocols do not get the colocated-caster freebie (their
    # sequencers live in group 0).
    senders = [p for p in system.topology.processes
               if system.topology.group_of(p) != 0]
    period = 0.7
    if protocol == "detmerge":
        # [1] amortises its slot streams over traffic; drive it in its
        # natural dense regime (the paper's model has every publisher
        # casting infinitely many messages) with all processes sending.
        senders = system.topology.processes
        messages = max(messages, 60)
        period = 0.08
    plans = periodic_workload(system.topology, period=period,
                              count=messages, senders=senders, start=0.01)
    msgs = schedule_workload(system, plans)
    system.run_quiescent()
    degrees = [system.meter.latency_degree(m.mid) for m in msgs]
    # Steady-state degree: ignore the first message (cold start) and
    # take the typical (minimum) value, matching the paper's best-case
    # accounting.
    steady = [d_ for d_ in degrees[1:] if d_ is not None]
    paper_deg, paper_msgs = paper[protocol]
    return ComparisonResult(
        protocol=protocol,
        paper_degree=paper_deg,
        measured_degree=min(steady) if steady else None,
        paper_msgs=paper_msgs,
        measured_inter_msgs=system.inter_group_messages / len(msgs),
    )


def fig1b_table(groups: int = 2, d: int = 3, seed: int = 1) -> str:
    """Render Figure 1(b) for one (groups, d) point."""
    rows = []
    for protocol in ("optimistic", "sequencer", "a2", "detmerge"):
        r = run_fig1b_single(protocol, groups, d, seed)
        rows.append(Row(
            label=_LABELS[protocol],
            values=[r.paper_degree, r.measured_degree,
                    r.paper_msgs, round(r.measured_inter_msgs, 1)],
        ))
    return format_table(
        f"Figure 1(b) — atomic broadcast, {groups} groups × {d} processes "
        f"(n={groups * d})",
        ["algorithm", "paper deg", "meas deg", "paper msgs",
         "meas inter/msg"],
        rows,
        note=("Degrees are steady-state best case (first, cold message "
              "excluded).  [12] is non-uniform; [1] assumes reliable links "
              "and crash-free publishers — both footnoted in the paper."),
    )


_LABELS = {
    "ring": "[4] Delporte&Fauconnier",
    "global": "[10] Rodrigues et al.",
    "fritzke": "[5] Fritzke et al.",
    "a1": "Algorithm A1 (paper)",
    "skeen": "[2] Skeen (no faults)",
    "optimistic": "[12] Sousa et al.",
    "sequencer": "[13] Vicente&Rodrigues",
    "a2": "Algorithm A2 (paper)",
    "detmerge": "[1] Aguilera&Strom",
}


def main() -> None:  # pragma: no cover - CLI convenience
    print(fig1a_table())
    print()
    print(fig1b_table())


if __name__ == "__main__":  # pragma: no cover
    main()
