"""Section 5.3's broadcast-rate discussion, as a measured sweep.

The paper: *"the presented broadcast algorithm never becomes reactive
if the time between two consecutive broadcasts is smaller than the time
to execute a round.  Moreover, in this case, all rounds are useful ...
In a large-scale system where the inter-group latency is 100
milliseconds, a broadcast frequency of 10 messages per second is
sufficient for the algorithm to reach this optimality."*

We run Algorithm A2 over 100 ms inter-group links and sweep the Poisson
broadcast rate from well below to well above 10 msg/s, reporting per
rate:

* the fraction of messages delivered with latency degree 1 (the warm
  path) vs 2+ (cold restarts),
* the fraction of rounds that delivered at least one message ("useful
  rounds"),
* mean delivery latency in milliseconds.

The paper's claim shows up as a knee around 10 msg/s: above it, rounds
stay warm (degree ~1, useful fraction ~1); below it, the algorithm
keeps going quiescent and most messages pay the restart penalty.

This experiment runs on the campaign engine: each sweep point is a
declarative :class:`~repro.campaigns.spec.ScenarioSpec`
(:func:`rate_scenario`), the sweep itself is a
:class:`~repro.campaigns.runner.Campaign`, and :func:`sweep` accepts
``jobs`` to fan points out over worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.campaigns.runner import Campaign, CampaignRunner, run_scenario_seed
from repro.campaigns.spec import LatencySpec, ScenarioSpec, WorkloadSpec

#: Metric extractors every rate point needs.
RATE_METRICS = ("degrees", "latency", "rounds")


@dataclass
class RatePoint:
    """Measurements at one broadcast rate."""

    rate_per_s: float
    messages: int
    degree1_fraction: float
    mean_degree: float
    useful_round_fraction: float
    mean_latency_ms: float


def rate_scenario(
    rate_per_s: float,
    duration_ms: float = 20_000.0,
    group_sizes=(3, 3),
    inter_ms: float = 100.0,
    seeds: Sequence[int] = (1,),
) -> ScenarioSpec:
    """Declare one sweep point.  Time unit = 1 ms."""
    return ScenarioSpec(
        name=f"rate={rate_per_s:g}",
        protocol="a2",
        group_sizes=tuple(group_sizes),
        latency=LatencySpec.wan(intra_ms=1.0, inter_ms=inter_ms,
                                inter_jitter_ms=2.0),
        workload=WorkloadSpec(kind="poisson", rate=rate_per_s / 1000.0,
                              duration=duration_ms),
        seeds=tuple(seeds),
        checkers=("properties",),
        metrics=RATE_METRICS,
        protocol_kwargs=(("propose_delay", 5.0),),
    )


def _point_from_metrics(rate_per_s: float,
                        metrics: Dict[str, float]) -> RatePoint:
    return RatePoint(
        rate_per_s=rate_per_s,
        messages=int(metrics["metered"]),
        degree1_fraction=metrics["degree_le1_fraction"],
        mean_degree=metrics["degree_mean"],
        useful_round_fraction=metrics["useful_round_fraction"],
        mean_latency_ms=metrics.get("latency_mean_mean", 0.0),
    )


def run_rate_point(
    rate_per_s: float,
    seed: int = 1,
    duration_ms: float = 20_000.0,
    group_sizes=(3, 3),
    inter_ms: float = 100.0,
) -> RatePoint:
    """One sweep point, executed on the campaign engine."""
    spec = rate_scenario(rate_per_s, duration_ms=duration_ms,
                         group_sizes=group_sizes, inter_ms=inter_ms)
    result = run_scenario_seed(spec, seed)
    if not result.ok:
        raise RuntimeError(f"checker failure at rate {rate_per_s}: "
                           f"{result.checkers}")
    return _point_from_metrics(rate_per_s, result.metrics)


def rate_sweep_campaign(
    rates: Sequence[float] = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
    seed: int = 1,
    duration_ms: float = 20_000.0,
) -> Campaign:
    """The full Section 5.3 sweep as a declarative campaign."""
    return Campaign(
        name="rate-sweep",
        scenarios=[rate_scenario(rate, duration_ms=duration_ms,
                                 seeds=(seed,))
                   for rate in rates],
        description="Section 5.3 A2 broadcast-rate sweep (100 ms WAN)",
    )


def sweep(rates=(0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
          seed: int = 1, jobs: int = 1) -> List[RatePoint]:
    """The full Section 5.3 sweep (``jobs > 1`` parallelises points)."""
    campaign = rate_sweep_campaign(rates, seed=seed)
    result = CampaignRunner(campaign, jobs=jobs).run()
    if not result.all_checkers_ok:
        raise RuntimeError(f"checker failures: {result.failures()}")
    return [
        _point_from_metrics(rate,
                            result.result(spec.name, seed).metrics)
        for rate, spec in zip(rates, campaign.scenarios)
    ]


def rate_table(points: List[RatePoint] = None) -> str:
    """Render the sweep."""
    from repro.runtime.results import Row, format_table

    points = points or sweep()
    rows = [
        Row(label=f"{p.rate_per_s:g} msg/s",
            values=[p.messages, f"{p.degree1_fraction:.2f}",
                    f"{p.mean_degree:.2f}",
                    f"{p.useful_round_fraction:.2f}",
                    f"{p.mean_latency_ms:.0f}"])
        for p in points
    ]
    return format_table(
        "Section 5.3 — A2 broadcast-rate sweep (inter-group = 100 ms)",
        ["rate", "msgs", "frac deg<=1", "mean deg", "useful rounds",
         "mean lat (ms)"],
        rows,
        note=("Paper's claim: at >= 10 msg/s the algorithm never becomes "
              "reactive and every round is useful — visible as the "
              "useful-round fraction approaching 1 while mean latency "
              "stays flat (~1.5 RTT).  The degree-1 fraction counts "
              "messages that caught an open bundling window; its ceiling "
              "is propose_delay / round duration, so it grows with the "
              "bundling window, not the rate."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(rate_table())


if __name__ == "__main__":  # pragma: no cover
    main()
