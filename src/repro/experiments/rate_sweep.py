"""Section 5.3's broadcast-rate discussion, as a measured sweep.

The paper: *"the presented broadcast algorithm never becomes reactive
if the time between two consecutive broadcasts is smaller than the time
to execute a round.  Moreover, in this case, all rounds are useful ...
In a large-scale system where the inter-group latency is 100
milliseconds, a broadcast frequency of 10 messages per second is
sufficient for the algorithm to reach this optimality."*

We run Algorithm A2 over 100 ms inter-group links and sweep the Poisson
broadcast rate from well below to well above 10 msg/s, reporting per
rate:

* the fraction of messages delivered with latency degree 1 (the warm
  path) vs 2+ (cold restarts),
* the fraction of rounds that delivered at least one message ("useful
  rounds"),
* mean delivery latency in milliseconds.

The paper's claim shows up as a knee around 10 msg/s: above it, rounds
stay warm (degree ~1, useful fraction ~1); below it, the algorithm
keeps going quiescent and most messages pay the restart penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.topology import LatencyModel
from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table
from repro.workload.generators import poisson_workload, schedule_workload


@dataclass
class RatePoint:
    """Measurements at one broadcast rate."""

    rate_per_s: float
    messages: int
    degree1_fraction: float
    mean_degree: float
    useful_round_fraction: float
    mean_latency_ms: float


def run_rate_point(
    rate_per_s: float,
    seed: int = 1,
    duration_ms: float = 20_000.0,
    group_sizes=(3, 3),
    inter_ms: float = 100.0,
) -> RatePoint:
    """One sweep point.  Time unit = 1 ms."""
    system = build_system(
        protocol="a2", group_sizes=list(group_sizes), seed=seed,
        latency=LatencyModel.wan(intra_ms=1.0, inter_ms=inter_ms,
                                 inter_jitter_ms=2.0),
        propose_delay=5.0,
    )
    plans = poisson_workload(
        system.topology, system.rng.stream("wl"),
        rate=rate_per_s / 1000.0,  # per ms
        duration=duration_ms,
    )
    messages = schedule_workload(system, plans)
    system.run_quiescent()

    degrees = [system.meter.latency_degree(m.mid) for m in messages]
    degrees = [d for d in degrees if d is not None]
    latencies = [
        system.meter.record_for(m.mid).mean_delivery_latency
        for m in messages
        if system.meter.record_for(m.mid).mean_delivery_latency is not None
    ]
    endpoint = system.endpoints[0]
    useful = (endpoint.useful_rounds / endpoint.rounds_executed
              if endpoint.rounds_executed else 0.0)
    return RatePoint(
        rate_per_s=rate_per_s,
        messages=len(degrees),
        degree1_fraction=(sum(1 for d in degrees if d <= 1) / len(degrees)
                          if degrees else 0.0),
        mean_degree=(sum(degrees) / len(degrees) if degrees else 0.0),
        useful_round_fraction=useful,
        mean_latency_ms=(sum(latencies) / len(latencies)
                         if latencies else 0.0),
    )


def sweep(rates=(0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
          seed: int = 1) -> List[RatePoint]:
    """The full Section 5.3 sweep."""
    return [run_rate_point(rate, seed=seed) for rate in rates]


def rate_table(points: List[RatePoint] = None) -> str:
    """Render the sweep."""
    points = points or sweep()
    rows = [
        Row(label=f"{p.rate_per_s:g} msg/s",
            values=[p.messages, f"{p.degree1_fraction:.2f}",
                    f"{p.mean_degree:.2f}",
                    f"{p.useful_round_fraction:.2f}",
                    f"{p.mean_latency_ms:.0f}"])
        for p in points
    ]
    return format_table(
        "Section 5.3 — A2 broadcast-rate sweep (inter-group = 100 ms)",
        ["rate", "msgs", "frac deg<=1", "mean deg", "useful rounds",
         "mean lat (ms)"],
        rows,
        note=("Paper's claim: at >= 10 msg/s the algorithm never becomes "
              "reactive and every round is useful — visible as the "
              "useful-round fraction approaching 1 while mean latency "
              "stays flat (~1.5 RTT).  The degree-1 fraction counts "
              "messages that caught an open bundling window; its ceiling "
              "is propose_delay / round duration, so it grows with the "
              "bundling window, not the rate."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(rate_table())


if __name__ == "__main__":  # pragma: no cover
    main()
