"""Scalability sweep: how the paper's algorithms grow with the system.

Not a single paper artefact but the quantified version of Figure 1's
asymptotic columns: we sweep the number of groups and the group size
and measure, per algorithm, the inter-group messages per application
message and the (simulated) delivery latency.  The asymptotic claims —
O(k²d²) for A1, O(kd²) for the ring, O(n²) for A2's rounds — appear as
the growth rates of the measured columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.runtime.builder import build_system
from repro.runtime.results import Row, format_table
from repro.workload.generators import (
    periodic_workload,
    schedule_workload,
    uniform_k_groups,
)


@dataclass
class ScalePoint:
    """One (protocol, groups, d) measurement."""

    protocol: str
    groups: int
    d: int
    messages: int
    inter_per_msg: float
    intra_per_msg: float
    mean_worst_latency: float


def run_scale_point(protocol: str, groups: int, d: int, seed: int = 1,
                    count: int = 10) -> ScalePoint:
    """A steady workload at one system size."""
    kwargs = {"propose_delay": 0.05} if protocol in ("a2", "nongenuine") \
        else {}
    system = build_system(protocol=protocol, group_sizes=[d] * groups,
                          seed=seed, **kwargs)
    system.start_rounds()
    if protocol in ("a2", "nongenuine", "sequencer", "optimistic",
                    "detmerge"):
        destinations = None  # broadcast protocols address everyone
    else:
        destinations = uniform_k_groups(2)
    plans = periodic_workload(system.topology, period=0.9, count=count,
                              destinations=destinations)
    msgs = schedule_workload(system, plans)
    system.run_quiescent()
    latencies = [
        system.meter.record_for(m.mid).worst_delivery_latency
        for m in msgs
        if system.meter.record_for(m.mid).worst_delivery_latency is not None
    ]
    return ScalePoint(
        protocol=protocol,
        groups=groups,
        d=d,
        messages=len(msgs),
        inter_per_msg=system.inter_group_messages / len(msgs),
        intra_per_msg=system.intra_group_messages / len(msgs),
        mean_worst_latency=(sum(latencies) / len(latencies)
                            if latencies else 0.0),
    )


def sweep_groups(protocol: str, group_counts=(2, 4, 6), d: int = 2,
                 seed: int = 1) -> Dict[int, ScalePoint]:
    """Grow the number of groups at fixed group size."""
    return {g: run_scale_point(protocol, g, d, seed)
            for g in group_counts}


def sweep_group_size(protocol: str, sizes=(2, 3, 4), groups: int = 2,
                     seed: int = 1) -> Dict[int, ScalePoint]:
    """Grow the group size at a fixed group count."""
    return {d: run_scale_point(protocol, groups, d, seed)
            for d in sizes}


def scalability_table(seed: int = 1) -> str:
    """Render the group-count sweep for the headline protocols."""
    rows: List[Row] = []
    for protocol in ("a1", "ring", "a2"):
        points = sweep_groups(protocol, seed=seed)
        for g, p in points.items():
            rows.append(Row(
                label=f"{protocol} @ {g} groups",
                values=[p.messages, f"{p.inter_per_msg:.1f}",
                        f"{p.intra_per_msg:.1f}",
                        f"{p.mean_worst_latency:.2f}"],
            ))
    return format_table(
        "Scalability sweep (d=2 per group; multicasts to k=2 of G; "
        "A2 broadcasts to all)",
        ["protocol @ size", "msgs", "inter/msg", "intra/msg",
         "mean worst lat"],
        rows,
        note=("A1's k is fixed at 2 so its inter/msg stays flat as G "
              "grows (genuineness!); A2 must involve every group, so "
              "its per-message cost grows with G — the tradeoff table "
              "in motion."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(scalability_table())


if __name__ == "__main__":  # pragma: no cover
    main()
