"""Scalability sweep: how the paper's algorithms grow with the system.

Not a single paper artefact but the quantified version of Figure 1's
asymptotic columns: we sweep the number of groups and the group size
and measure, per algorithm, the inter-group messages per application
message and the (simulated) delivery latency.  The asymptotic claims —
O(k²d²) for A1, O(kd²) for the ring, O(n²) for A2's rounds — appear as
the growth rates of the measured columns.

Like :mod:`repro.experiments.rate_sweep`, this experiment is ported to
the campaign engine: :func:`scale_scenario` declares one (protocol,
groups, d) point, the sweeps run through a
:class:`~repro.campaigns.runner.CampaignRunner`, and ``jobs > 1``
spreads points over worker processes.

One deliberate behaviour change versus the pre-campaign version: the
uniform-k destination draws now come from the seed-derived ``"wl"``
stream (previously an implicit fixed ``random.Random(0)``), so
different seeds genuinely vary the destination pattern.  Absolute
table values at >2 groups shift slightly; the asymptotic growth rates
the benchmarks assert are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.campaigns.runner import Campaign, CampaignRunner, run_scenario_seed
from repro.campaigns.spec import DestinationSpec, ScenarioSpec, WorkloadSpec

#: Broadcast protocols must address every group.
BROADCAST_PROTOCOLS = ("a2", "nongenuine", "sequencer", "optimistic",
                       "detmerge")

SCALE_METRICS = ("latency", "traffic")


@dataclass
class ScalePoint:
    """One (protocol, groups, d) measurement."""

    protocol: str
    groups: int
    d: int
    messages: int
    inter_per_msg: float
    intra_per_msg: float
    mean_worst_latency: float


def scale_scenario(protocol: str, groups: int, d: int,
                   count: int = 10,
                   seeds: Sequence[int] = (1,)) -> ScenarioSpec:
    """Declare a steady workload at one system size."""
    kwargs: Tuple[Tuple[str, object], ...] = (
        (("propose_delay", 0.05),) if protocol in ("a2", "nongenuine")
        else ()
    )
    destinations = (DestinationSpec(kind="all")
                    if protocol in BROADCAST_PROTOCOLS
                    else DestinationSpec(kind="uniform-k", k=2))
    return ScenarioSpec(
        name=f"{protocol}@{groups}x{d}",
        protocol=protocol,
        group_sizes=(d,) * groups,
        workload=WorkloadSpec(kind="periodic", period=0.9, count=count,
                              destinations=destinations),
        seeds=tuple(seeds),
        checkers=("properties",),
        metrics=SCALE_METRICS,
        start_rounds=True,
        protocol_kwargs=kwargs,
    )


def _point_from_metrics(protocol: str, groups: int, d: int,
                        metrics: Dict[str, float]) -> ScalePoint:
    planned = int(metrics["planned_casts"])
    return ScalePoint(
        protocol=protocol,
        groups=groups,
        d=d,
        messages=planned,
        inter_per_msg=metrics["inter_group_messages"] / planned,
        intra_per_msg=metrics["intra_group_messages"] / planned,
        mean_worst_latency=metrics.get("latency_worst_mean", 0.0),
    )


def run_scale_point(protocol: str, groups: int, d: int, seed: int = 1,
                    count: int = 10) -> ScalePoint:
    """A steady workload at one system size, via the campaign engine."""
    spec = scale_scenario(protocol, groups, d, count=count)
    result = run_scenario_seed(spec, seed)
    if not result.ok:
        raise RuntimeError(f"checker failure at {spec.name}: "
                           f"{result.checkers}")
    return _point_from_metrics(protocol, groups, d, result.metrics)


def _run_points(points: List[Tuple[str, int, int]], seed: int,
                jobs: int = 1) -> List[ScalePoint]:
    """Run many (protocol, groups, d) points as one campaign."""
    campaign = Campaign(
        name="scalability",
        scenarios=[scale_scenario(p, g, d, seeds=(seed,))
                   for p, g, d in points],
        description="group-count / group-size sweeps of Figure 1",
    )
    result = CampaignRunner(campaign, jobs=jobs).run()
    if not result.all_checkers_ok:
        raise RuntimeError(f"checker failures: {result.failures()}")
    return [
        _point_from_metrics(p, g, d,
                            result.result(spec.name, seed).metrics)
        for (p, g, d), spec in zip(points, campaign.scenarios)
    ]


def sweep_groups(protocol: str, group_counts=(2, 4, 6), d: int = 2,
                 seed: int = 1, jobs: int = 1) -> Dict[int, ScalePoint]:
    """Grow the number of groups at fixed group size."""
    points = _run_points([(protocol, g, d) for g in group_counts],
                         seed, jobs=jobs)
    return dict(zip(group_counts, points))


def sweep_group_size(protocol: str, sizes=(2, 3, 4), groups: int = 2,
                     seed: int = 1, jobs: int = 1) -> Dict[int, ScalePoint]:
    """Grow the group size at a fixed group count."""
    points = _run_points([(protocol, groups, d) for d in sizes],
                         seed, jobs=jobs)
    return dict(zip(sizes, points))


def scalability_table(seed: int = 1) -> str:
    """Render the group-count sweep for the headline protocols."""
    from repro.runtime.results import Row, format_table

    rows: List[Row] = []
    for protocol in ("a1", "ring", "a2"):
        points = sweep_groups(protocol, seed=seed)
        for g, p in points.items():
            rows.append(Row(
                label=f"{protocol} @ {g} groups",
                values=[p.messages, f"{p.inter_per_msg:.1f}",
                        f"{p.intra_per_msg:.1f}",
                        f"{p.mean_worst_latency:.2f}"],
            ))
    return format_table(
        "Scalability sweep (d=2 per group; multicasts to k=2 of G; "
        "A2 broadcasts to all)",
        ["protocol @ size", "msgs", "inter/msg", "intra/msg",
         "mean worst lat"],
        rows,
        note=("A1's k is fixed at 2 so its inter/msg stays flat as G "
              "grows (genuineness!); A2 must involve every group, so "
              "its per-message cost grows with G — the tradeoff table "
              "in motion."),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(scalability_table())


if __name__ == "__main__":  # pragma: no cover
    main()
