"""Baseline protocols of the paper's Figure 1 comparison."""

from repro.baselines.detmerge import DeterministicMergeBroadcast
from repro.baselines.fritzke import FritzkeMulticast
from repro.baselines.global_consensus import GlobalConsensusMulticast
from repro.baselines.optimistic import OptimisticBroadcast
from repro.baselines.ring import RingMulticast
from repro.baselines.sequencer import SequencerBroadcast
from repro.baselines.skeen import SkeenMulticast

__all__ = [
    "DeterministicMergeBroadcast", "FritzkeMulticast",
    "GlobalConsensusMulticast", "OptimisticBroadcast", "RingMulticast",
    "SequencerBroadcast", "SkeenMulticast",
]
