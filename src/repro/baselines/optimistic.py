"""Sousa, Pereira, Moura & Oliveira [12] — optimistic total order.

A non-uniform atomic broadcast for wide area networks: the caster sends
m directly to all processes, which **optimistically deliver** it on
receipt (exploiting the spontaneous total order that WAN delay
compensation makes likely) — latency degree 1.  The **final** delivery
order is fixed by a lightweight sequencer whose ORDER announcement
arrives one hop later — latency degree 2.

The paper's Figure 1b charges this protocol degree 2 (final delivery)
and O(n) messages (one DATA copy per process plus one ORDER copy per
process; no quadratic validation traffic) and footnotes that it is
non-uniform: the agreement property holds for correct processes only.
Our implementation mirrors that: there is no majority validation, so a
process that final-delivers and crashes may have delivered a message no
one else does — allowed by non-uniform agreement, flagged by the
uniform checker (a test asserts exactly this distinction).

The sequencer is the lowest pid; fail-over is out of scope (the paper
compares best-case, failure-free behaviour).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.interfaces import (
    AppMessage,
    AtomicBroadcast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.process import Process


class OptimisticBroadcast(AtomicBroadcast):
    """One process's endpoint of the [12]-style baseline."""

    def __init__(self, process: Process, topology: Topology,
                 namespace: str = "opt") -> None:
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.sequencer = topology.processes[0]
        self.i_am_sequencer = process.pid == self.sequencer
        self.catalog = MessageCatalog.of(process.sim)

        self._next_seq = 0          # sequencer-side counter
        self._orders: Dict[int, str] = {}   # seq -> mid
        self._have_data: Set[str] = set()
        self._next_deliver = 0      # final-delivery cursor
        self._optimistic: List[str] = []
        self._handler: Optional[DeliveryHandler] = None
        process.register_handler(f"{self.ns}.data", self._on_data)
        process.register_handler(f"{self.ns}.order", self._on_order)

    # ------------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    @property
    def optimistic_deliveries(self) -> List[str]:
        """Message ids optimistically delivered, in receipt order."""
        return list(self._optimistic)

    def a_bcast(self, msg: AppMessage) -> None:
        self.catalog.intern(msg)
        self.process.send_many(
            self.topology.processes, f"{self.ns}.data",
            {"mid": msg.mid},
        )

    # ------------------------------------------------------------------
    def _on_data(self, netmsg: Message) -> None:
        msg = self.catalog.get(netmsg.payload["mid"])
        if msg.mid in self._have_data:
            return
        self._have_data.add(msg.mid)
        self._optimistic.append(msg.mid)  # optimistic delivery, degree 1
        if self.i_am_sequencer:
            seq = self._next_seq
            self._next_seq += 1
            self.process.send_many(
                self.topology.processes, f"{self.ns}.order",
                {"seq": seq, "mid": msg.mid},
            )
        self._try_final()

    def _on_order(self, netmsg: Message) -> None:
        self._orders.setdefault(netmsg.payload["seq"], netmsg.payload["mid"])
        self._try_final()

    def _try_final(self) -> None:
        """Final delivery strictly in sequencer order."""
        while self._next_deliver in self._orders:
            mid = self._orders.pop(self._next_deliver)
            self._next_deliver += 1
            msg = self.catalog.get(mid)
            if self._handler is None:
                raise RuntimeError("no A-Deliver handler installed")
            self._handler(msg)
