"""Skeen's atomic multicast (Birman & Joseph [2]), decentralised form.

The algorithm the paper's optimality corollary is about: designed for
failure-free systems, messages are timestamped with Lamport clocks and
delivered in timestamp order.

We implement the decentralised variant the paper's analysis assumes:

1. the caster sends m to every addressee (one hop);
2. every addressee assigns m a proposal from its local logical clock
   and sends the proposal to every *other* addressee (one hop);
3. m's final timestamp is the maximum proposal; a process delivers m
   once the final timestamp is known and no other known message can
   still obtain a smaller (timestamp, id) pair.

Latency degree 2 — which Section 3 of the paper proves optimal for
genuine multicast, making 25-year-old Skeen latency-optimal ("a result
apparently left unnoticed for more than 20 years").

No fault tolerance: a crash of any addressee blocks delivery.  The
baseline exists for the optimality corollary and the Figure 1a
comparison, both of which are failure-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.interfaces import (
    AppMessage,
    AtomicMulticast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.process import Process


@dataclass
class _Entry:
    """Per-message Skeen state on one process."""

    msg: AppMessage
    own_proposal: Optional[int] = None
    proposals: Dict[int, int] = None
    final_ts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.proposals is None:
            self.proposals = {}


class SkeenMulticast(AtomicMulticast):
    """One process's endpoint of decentralised Skeen."""

    def __init__(self, process: Process, topology: Topology,
                 namespace: str = "skeen") -> None:
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.my_gid = topology.group_of(process.pid)
        self.catalog = MessageCatalog.of(process.sim)
        self.clock = 0  # Skeen's per-process logical clock
        self.entries: Dict[str, _Entry] = {}
        self.delivered: Set[str] = set()
        self._handler: Optional[DeliveryHandler] = None
        process.register_handler(f"{self.ns}.data", self._on_data)
        process.register_handler(f"{self.ns}.propose", self._on_propose)

    # ------------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_mcast(self, msg: AppMessage) -> None:
        self.catalog.intern(msg)
        dest = self.topology.processes_of_groups(msg.dest_groups)
        self.process.send_many(dest, f"{self.ns}.data", {"mid": msg.mid})

    # ------------------------------------------------------------------
    def _entry(self, msg: AppMessage) -> _Entry:
        if msg.mid not in self.entries:
            self.entries[msg.mid] = _Entry(msg=msg)
        return self.entries[msg.mid]

    def _on_data(self, netmsg: Message) -> None:
        msg = self.catalog.get(netmsg.payload["mid"])
        entry = self._entry(msg)
        if entry.msg.sender == -1:
            entry.msg = msg  # replace the proposal-only stub
        if entry.own_proposal is not None:
            return  # duplicate
        self.clock += 1
        entry.own_proposal = self.clock
        entry.proposals[self.process.pid] = self.clock
        dest = self.topology.processes_of_groups(msg.dest_groups)
        others = [p for p in dest if p != self.process.pid]
        if others:
            self.process.send_many(
                others, f"{self.ns}.propose",
                {"mid": msg.mid, "ts": self.clock},
            )
        self._try_finalise(entry)

    def _on_propose(self, netmsg: Message) -> None:
        mid = netmsg.payload["mid"]
        entry = self.entries.get(mid)
        if entry is None:
            # Proposal outran the data copy; remember it under a stub.
            entry = _Entry(msg=AppMessage(mid=mid, sender=-1,
                                          dest_groups=()))
            self.entries[mid] = entry
        entry.proposals[netmsg.src] = netmsg.payload["ts"]
        self._try_finalise(entry)

    def _try_finalise(self, entry: _Entry) -> None:
        if entry.own_proposal is None or entry.final_ts is not None:
            return  # data not seen yet, or already final
        dest = set(self.topology.processes_of_groups(entry.msg.dest_groups))
        if set(entry.proposals) >= dest:
            entry.final_ts = max(entry.proposals.values())
            self.clock = max(self.clock, entry.final_ts)
        self._try_deliver()

    # ------------------------------------------------------------------
    def _try_deliver(self) -> None:
        """Deliver final messages that no pending message can precede."""
        while True:
            candidate = self._deliverable()
            if candidate is None:
                return
            del self.entries[candidate.msg.mid]
            self.delivered.add(candidate.msg.mid)
            if self._handler is None:
                raise RuntimeError("no A-Deliver handler installed")
            self._handler(candidate.msg)

    def _deliverable(self) -> Optional[_Entry]:
        final_entries = [e for e in self.entries.values()
                         if e.final_ts is not None]
        if not final_entries:
            return None
        head = min(final_entries, key=lambda e: (e.final_ts, e.msg.mid))
        # A non-final entry's final timestamp will be at least its own
        # proposal (the final is a max over proposals), so the proposal
        # is a sound lower bound.  Entries we only know from a remote
        # proposal (own_proposal None) are bounded by that proposal.
        for entry in self.entries.values():
            if entry is head or entry.final_ts is not None:
                continue
            known = list(entry.proposals.values())
            bound = min(known) if known else None
            if bound is None:
                continue  # nothing known yet; cannot block (no data seen)
            if (bound, entry.msg.mid) < (head.final_ts, head.msg.mid):
                return None
        return head
