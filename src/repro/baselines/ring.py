"""Delporte-Gallet & Fauconnier [4] — ring-based genuine atomic multicast.

The destination groups of a message, sorted by group id, form a ring:
the first group runs (intra-group) consensus to assign the message a
timestamp and hands it to the second group, which raises the timestamp
and hands it on, until the last group fixes the **final** timestamp and
sends it back to every destination group.  To avoid delivery-order
cycles, a group handles one message at a time: it blocks until it sees
the final timestamp of the message it last handled (the paper's "final
acknowledgment from group gk").

Cost profile (paper Figure 1a): latency degree proportional to the
number of destination groups k (the handoffs are sequential), against
O(k·d²) inter-group messages — *cheaper* in messages than A1's O(k²d²)
but k/2 times slower.  This tradeoff is exactly what the paper's related
work section discusses.

Safety note: a group's timestamp assignments carry a **floor** inside
the consensus value — one more than the largest final timestamp the
proposer has seen — so a message assigned after another's finalisation
is guaranteed the larger timestamp.  Delivery then follows (final, id)
order, with assigned-but-unfinalised entries acting as blockers at
their assignment timestamp (a lower bound on their final).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.paxos import GroupConsensus
from repro.consensus.sequence import ConsensusSequence
from repro.core.interfaces import (
    AppMessage,
    AtomicMulticast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.process import Process


@dataclass
class _RingEntry:
    """A message this group has assigned a timestamp to."""

    msg: AppMessage
    ts: int
    final: bool = False


class RingMulticast(AtomicMulticast):
    """One process's endpoint of the [4] baseline."""

    def __init__(
        self,
        process: Process,
        topology: Topology,
        detector: FailureDetector,
        retry_timeout: float = 50.0,
        namespace: str = "ring",
    ) -> None:
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.my_gid = topology.group_of(process.pid)
        self.catalog = MessageCatalog.of(process.sim)

        self.prop_k = 1
        self.floor = 0          # one past the largest final ts seen
        self.current: Optional[str] = None  # message we are blocked on
        self.pending: Dict[str, int] = {}  # mid -> ts_in
        self.entries: Dict[str, _RingEntry] = {}
        self.delivered: Set[str] = set()
        self._handler: Optional[DeliveryHandler] = None

        self.consensus = GroupConsensus(
            process, topology.members(self.my_gid), detector,
            retry_timeout=retry_timeout, namespace=f"{self.ns}.cons",
        )
        self.sequence = ConsensusSequence(
            self.consensus, self._on_decided, first_instance=1
        )
        process.register_handler(f"{self.ns}.data", self._on_data)
        process.register_handler(f"{self.ns}.handoff", self._on_handoff)
        process.register_handler(f"{self.ns}.final", self._on_final)

    # ------------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_mcast(self, msg: AppMessage) -> None:
        """Send m to every process of the *first* destination group."""
        self.catalog.intern(msg)
        first_gid = min(msg.dest_groups)
        self.process.send_many(
            self.topology.members(first_gid), f"{self.ns}.data",
            {"mid": msg.mid, "ts": 0},
        )

    # ------------------------------------------------------------------
    # Ring input
    # ------------------------------------------------------------------
    def _on_data(self, netmsg: Message) -> None:
        self._enqueue(netmsg.payload["mid"], netmsg.payload["ts"])

    def _on_handoff(self, netmsg: Message) -> None:
        self._enqueue(netmsg.payload["mid"], netmsg.payload["ts"])

    def _enqueue(self, mid: str, ts_in: int) -> None:
        if mid in self.entries or mid in self.delivered or mid in self.pending:
            return
        self.pending[mid] = ts_in
        self._maybe_propose()

    # ------------------------------------------------------------------
    # Group serialisation via consensus
    # ------------------------------------------------------------------
    def _maybe_propose(self) -> None:
        if self.current is not None or not self.pending:
            return  # blocked on an in-flight message, or nothing to do
        if self.prop_k > self.sequence.current:
            return
        mid = min(self.pending)  # deterministic choice
        ts_in = self.pending[mid]
        self.sequence.propose(
            self.sequence.current, (mid, ts_in, self.floor)
        )
        self.prop_k = self.sequence.current + 1

    def _on_decided(self, instance: int, value: tuple) -> None:
        mid, ts_in, floor = value
        msg = self.catalog.get(mid)
        self.pending.pop(msg.mid, None)
        assigned = max(ts_in, instance, floor)
        self.sequence.advance_to(assigned + 1)
        if msg.mid in self.delivered or msg.mid in self.entries:
            self._maybe_propose()
            return
        ring = sorted(msg.dest_groups)
        is_last = ring[-1] == self.my_gid
        entry = _RingEntry(msg=msg, ts=assigned, final=is_last)
        self.entries[msg.mid] = entry
        if is_last:
            # We fix the final timestamp; tell the other groups.
            self.floor = max(self.floor, assigned + 1)
            others = [g for g in ring if g != self.my_gid]
            if others:
                self.process.send_many(
                    self.topology.processes_of_groups(others),
                    f"{self.ns}.final",
                    {"mid": msg.mid, "ts": assigned},
                )
            self._try_deliver()
            self._maybe_propose()
        else:
            # Hand over to the next group and block until the final.
            self.current = msg.mid
            next_gid = ring[ring.index(self.my_gid) + 1]
            self.process.send_many(
                self.topology.members(next_gid), f"{self.ns}.handoff",
                {"mid": msg.mid, "ts": assigned},
            )

    def _on_final(self, netmsg: Message) -> None:
        mid = netmsg.payload["mid"]
        ts = netmsg.payload["ts"]
        self.floor = max(self.floor, ts + 1)
        entry = self.entries.get(mid)
        if entry is None:
            if mid in self.delivered:
                return
            entry = _RingEntry(msg=self.catalog.get(mid), ts=ts)
            self.entries[mid] = entry
        if not entry.final:
            entry.ts = ts
            entry.final = True
        if self.current == mid:
            self.current = None  # the paper's "final acknowledgment"
        self._try_deliver()
        self._maybe_propose()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _try_deliver(self) -> None:
        while True:
            finals = [e for e in self.entries.values() if e.final]
            if not finals:
                return
            head = min(finals, key=lambda e: (e.ts, e.msg.mid))
            blocked = any(
                (e.ts, e.msg.mid) < (head.ts, head.msg.mid)
                for e in self.entries.values() if not e.final
            )
            if blocked:
                return
            del self.entries[head.msg.mid]
            self.delivered.add(head.msg.mid)
            if self._handler is None:
                raise RuntimeError("no A-Deliver handler installed")
            self._handler(head.msg)
