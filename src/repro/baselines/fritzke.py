"""Fritzke, Ingels, Mostéfaoui & Raynal [5] — four-stage atomic multicast.

The algorithm the paper's A1 optimises.  Per the paper's Section 4.1,
the differences from A1 are:

1. the initial dissemination uses **uniform** reliable multicast
   (O(|dest|²) messages) instead of the non-uniform primitive;
2. **no stage skipping**: every message — even one addressed to a
   single group, or one whose group proposed the global maximum — walks
   all four stages s0..s3, paying the second consensus instance.

Both algorithms share the latency degree of 2 (the extra consensus is
intra-group), but [5] runs more consensus instances and sends more
intra-group messages — the quantity the ablation benchmark measures.

Implementation: the stage machine is A1's with ``enable_stage_skipping``
forced off and the uniform reliable multicast swapped in.
"""

from __future__ import annotations

from repro.core.amcast import AtomicMulticastA1
from repro.failure.detectors import FailureDetector
from repro.net.topology import Topology
from repro.rmcast.reliable import UniformReliableMulticast
from repro.sim.process import Process


class FritzkeMulticast(AtomicMulticastA1):
    """One process's endpoint of the [5] baseline."""

    RMCAST_CLS = UniformReliableMulticast

    def __init__(
        self,
        process: Process,
        topology: Topology,
        detector: FailureDetector,
        retry_timeout: float = 50.0,
        relay_after: float = 20.0,
        namespace: str = "fritzke",
    ) -> None:
        super().__init__(
            process, topology, detector,
            retry_timeout=retry_timeout, relay_after=relay_after,
            enable_stage_skipping=False, namespace=namespace,
        )
