"""Aguilera & Strom [1] — atomic broadcast by deterministic merge.

The strong-model baseline of the paper's Figure 1: links are reliable,
publishers never crash and (conceptually) publish infinitely many
messages.  Every process is a publisher that emits a stream of *slots*;
subscribers apply the same deterministic merge — ascending slot index,
ties broken by publisher pid — so no agreement protocol is needed at
all.  Delivery of a slot needs the same-index slot of **every**
publisher, which arrives one direct hop after emission: latency degree
1, one message per (publisher, subscriber) pair per slot — O(n) per
application message, the cheapest row of Figure 1b.

Finite-run adaptation (documented in DESIGN.md): real [1] streams are
infinite.  We drive slots with a fixed emission period (``slot_period``)
and let a publisher with nothing to say emit an explicit empty slot —
but only while some other publisher still has traffic in flight, so a
finite workload produces a finite run.  Concretely, each process keeps
emitting slots until it has seen every publisher's slot for the highest
index carrying a real message, then stops: the simulation quiesces.

This adaptation weakens nothing the Figure 1 comparison relies on — in
the infinite-traffic regime every slot is one hop and the merge delay
the paper analyses is our slot period.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.interfaces import (
    AppMessage,
    AtomicBroadcast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.process import Process


class DeterministicMergeBroadcast(AtomicBroadcast):
    """One process's endpoint of the [1]-style baseline."""

    def __init__(
        self,
        process: Process,
        topology: Topology,
        slot_period: float = 0.5,
        namespace: str = "dmrg",
    ) -> None:
        """Attach the endpoint.

        Args:
            slot_period: Virtual time between slot emissions; the
                merge delay of [1] is bounded by this plus one hop.
        """
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.slot_period = slot_period
        self.catalog = MessageCatalog.of(process.sim)

        self._outbox: List[str] = []         # mids waiting for a slot
        self._my_next_slot = 0
        self._slots: Dict[Tuple[int, int], list] = {}  # (pub, idx) -> mids
        self._cursor = (0, 0)                # (index, publisher rank)
        self._max_real_index = -1            # highest index with a message
        self._ticking = False
        self._handler: Optional[DeliveryHandler] = None
        process.register_handler(f"{self.ns}.slot", self._on_slot)

    # ------------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_bcast(self, msg: AppMessage) -> None:
        """Queue m for our next slot; start the slot clock if idle."""
        self.catalog.intern(msg)
        self._outbox.append(msg.mid)
        self._ensure_ticking(immediate=True)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def _ensure_ticking(self, immediate: bool = False) -> None:
        if self._ticking or self.process.crashed:
            return
        self._ticking = True
        delay = 0.0 if immediate else self.slot_period
        self.process.sim.schedule(delay, self._tick, label=f"{self.ns}.tick")

    def _tick(self) -> None:
        self._ticking = False
        if self.process.crashed:
            return
        index = self._my_next_slot
        self._my_next_slot += 1
        mids = list(self._outbox)
        self._outbox.clear()
        self.process.send_many(
            self.topology.processes, f"{self.ns}.slot",
            {"pub": self.process.pid, "index": index, "mids": mids},
        )
        if self._behind_real_traffic():
            self._ensure_ticking()

    def _behind_real_traffic(self) -> bool:
        """Keep emitting while real messages still need merging."""
        return (self._outbox
                or self._my_next_slot <= self._max_real_index
                or self._cursor[0] <= self._max_real_index)

    # ------------------------------------------------------------------
    # Subscribing / merging
    # ------------------------------------------------------------------
    def _on_slot(self, netmsg: Message) -> None:
        key = (netmsg.payload["pub"], netmsg.payload["index"])
        mids = netmsg.payload["mids"]
        self._slots.setdefault(key, mids)
        if mids:
            self._max_real_index = max(self._max_real_index,
                                       netmsg.payload["index"])
            # Someone published real traffic: we must emit matching
            # slots so every subscriber's merge can pass this index.
            self._ensure_ticking()
        self._merge()

    def _merge(self) -> None:
        publishers = self.topology.processes  # ascending pid = rank order
        while True:
            index, rank = self._cursor
            key = (publishers[rank], index)
            if key not in self._slots:
                return
            for mid in sorted(self._slots.pop(key)):
                msg = self.catalog.get(mid)
                if self._handler is None:
                    raise RuntimeError("no A-Deliver handler installed")
                self._handler(msg)
            rank += 1
            if rank == len(publishers):
                rank, index = 0, index + 1
            self._cursor = (index, rank)
            if self._behind_real_traffic():
                self._ensure_ticking()
