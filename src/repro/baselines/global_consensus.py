"""Rodrigues, Guerraoui & Schiper [10] — multicast via cross-group consensus.

Per message m:

1. the caster sends m to every addressee (one hop);
2. every addressee timestamps m from its logical clock and sends the
   proposal to every other addressee (one hop);
3. once a process holds proposals from the addressees it runs a
   consensus instance **spanning all destination groups** on the
   maximum proposal — the paper's reason this protocol is "not well
   suited for wide area networks": the consensus itself crosses groups,
   adding two more inter-group delays (its latency degree is 2);
4. the decided value is m's final timestamp; delivery follows
   (final timestamp, id) order with the usual pending-proposal blockers.

Measured profile (paper Figure 1a): latency degree 4, O(k²d²)
inter-group messages.

Simplification (documented in DESIGN.md): step 3 waits for proposals
from *all* addressees rather than a majority of each group.  The
original's majority variant needs an extra mechanism to keep one's own
proposal a lower bound of the decided timestamp; waiting for all makes
that immediate and only strengthens the (failure-free, best-case)
Figure 1a comparison this baseline exists for.  Fault tolerance in the
consensus step itself is retained (it is quorum-based Paxos).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.consensus.paxos import GroupConsensus
from repro.core.interfaces import (
    AppMessage,
    AtomicMulticast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.process import Process


@dataclass
class _Entry:
    """Per-message state."""

    msg: AppMessage
    own_proposal: Optional[int] = None
    proposals: Dict[int, int] = field(default_factory=dict)
    final_ts: Optional[int] = None
    proposed_to_consensus: bool = False


class GlobalConsensusMulticast(AtomicMulticast):
    """One process's endpoint of the [10] baseline."""

    def __init__(
        self,
        process: Process,
        topology: Topology,
        detector: FailureDetector,
        retry_timeout: float = 50.0,
        namespace: str = "glob",
    ) -> None:
        self.process = process
        self.topology = topology
        self.detector = detector
        self.retry_timeout = retry_timeout
        self.ns = namespace
        self.my_gid = topology.group_of(process.pid)
        self.catalog = MessageCatalog.of(process.sim)
        self.clock = 0
        self.entries: Dict[str, _Entry] = {}
        self.delivered: Set[str] = set()
        # One consensus stack per destination-set cohort, created lazily;
        # instances within a stack are keyed by message id (the Paxos
        # machinery never does arithmetic on instance keys).
        self._cohorts: Dict[tuple, GroupConsensus] = {}
        self._handler: Optional[DeliveryHandler] = None
        process.register_handler(f"{self.ns}.data", self._on_data)
        process.register_handler(f"{self.ns}.ts", self._on_ts)

    # ------------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    def a_mcast(self, msg: AppMessage) -> None:
        self.catalog.intern(msg)
        dest = self.topology.processes_of_groups(msg.dest_groups)
        self.process.send_many(dest, f"{self.ns}.data",
                               {"mid": msg.mid})

    # ------------------------------------------------------------------
    def _cohort(self, dest_groups: tuple) -> GroupConsensus:
        """The cross-group consensus stack for this destination set."""
        key = tuple(sorted(dest_groups))
        if key not in self._cohorts:
            members = self.topology.processes_of_groups(key)
            tag = "-".join(str(g) for g in key)
            stack = GroupConsensus(
                self.process, members, self.detector,
                retry_timeout=self.retry_timeout,
                namespace=f"{self.ns}.cons{tag}",
            )
            stack.set_decision_handler(self._on_consensus_decision)
            self._cohorts[key] = stack
        return self._cohorts[key]

    # ------------------------------------------------------------------
    def _on_data(self, netmsg: Message) -> None:
        msg = self.catalog.get(netmsg.payload["mid"])
        entry = self.entries.get(msg.mid)
        if entry is None:
            entry = _Entry(msg=msg)
            self.entries[msg.mid] = entry
        if entry.own_proposal is not None or msg.mid in self.delivered:
            return
        self.clock += 1
        entry.own_proposal = self.clock
        entry.proposals[self.process.pid] = self.clock
        dest = self.topology.processes_of_groups(msg.dest_groups)
        others = [p for p in dest if p != self.process.pid]
        if others:
            self.process.send_many(others, f"{self.ns}.ts",
                                   {"mid": msg.mid, "ts": self.clock})
        self._maybe_run_consensus(entry)

    def _on_ts(self, netmsg: Message) -> None:
        msg = self.catalog.get(netmsg.payload["mid"])
        entry = self.entries.get(msg.mid)
        if entry is None:
            entry = _Entry(msg=msg)
            self.entries[msg.mid] = entry
        entry.proposals[netmsg.src] = netmsg.payload["ts"]
        self._maybe_run_consensus(entry)

    def _maybe_run_consensus(self, entry: _Entry) -> None:
        if entry.proposed_to_consensus or entry.final_ts is not None:
            return
        if entry.own_proposal is None:
            return
        dest = set(self.topology.processes_of_groups(entry.msg.dest_groups))
        if set(entry.proposals) < dest:
            return
        entry.proposed_to_consensus = True
        final = max(entry.proposals.values())
        self._cohort(entry.msg.dest_groups).propose(
            entry.msg.mid, (entry.msg.mid, final)
        )

    def _on_consensus_decision(self, mid: str, value: tuple) -> None:
        decided_mid, final = value
        msg = self.catalog.get(decided_mid)
        entry = self.entries.get(mid)
        if entry is None:
            entry = _Entry(msg=msg)
            self.entries[mid] = entry
        if mid in self.delivered:
            return
        entry.final_ts = final
        self.clock = max(self.clock, final)
        self._try_deliver()

    # ------------------------------------------------------------------
    def _try_deliver(self) -> None:
        while True:
            finals = [e for e in self.entries.values()
                      if e.final_ts is not None]
            if not finals:
                return
            head = min(finals, key=lambda e: (e.final_ts, e.msg.mid))
            # Non-final entries block at their smallest known proposal:
            # the decided timestamp is the max over *all* addressees'
            # proposals, so any single proposal is a lower bound.
            for entry in self.entries.values():
                if entry.final_ts is not None:
                    continue
                known = list(entry.proposals.values())
                if not known:
                    continue
                if (min(known), entry.msg.mid) < (head.final_ts, head.msg.mid):
                    return
            del self.entries[head.msg.mid]
            self.delivered.add(head.msg.mid)
            if self._handler is None:
                raise RuntimeError("no A-Deliver handler installed")
            self._handler(head.msg)
