"""Vicente & Rodrigues [13] — sequencer-based uniform atomic broadcast.

The original assigns every process a *sequencer* that numbers the
messages that process broadcasts; processes deliver optimistically on
receiving a sequence number and deliver finally ("uniformly") once the
number has been validated by a majority.

Our implementation keeps the measured profile of the paper's Figure 1b
row — final-delivery latency degree 2 and O(n²) messages — with the
following concrete shape:

1. the caster sends m to **all** processes (hop 1);
2. the caster's sequencer (the lowest-pid member of its group, so
   sequencing adds no inter-group hop) assigns m the next sequence
   number of that caster and broadcasts SEQ (arrives hop 2);
3. every process, upon *receiving m itself* (hop 1), echoes an ACK to
   all (arrives hop 2) — the majority-validation traffic;
4. a process optimistically delivers m in sequence order when SEQ
   arrives, and **finally delivers** once it also holds ACKs from a
   majority — both conditions resolve at hop 2, hence degree 2.

Simplification (documented in DESIGN.md): sequencer fail-over is not
implemented — the baseline exists for the failure-free Figure 1b
comparison.  The latency meter records final deliveries.

Global order: sequence numbers are totalised as (sequencer-emission
index per sequencer, merged deterministically).  With one sequencer per
group, the delivery order is the merge of per-sequencer streams; we
realise the merge with a global round-robin over sequencers, padding
with explicit no-op announcements when a sequencer has nothing — the
standard trick to keep deterministic merges live.  To keep runs finite
the no-op padding is *demand driven*: a sequencer announces an empty
slot only when another sequencer's slot at the same index exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.interfaces import (
    AppMessage,
    AtomicBroadcast,
    DeliveryHandler,
    MessageCatalog,
)
from repro.failure.detectors import FailureDetector
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.process import Process


class SequencerBroadcast(AtomicBroadcast):
    """One process's endpoint of the [13]-style baseline."""

    def __init__(
        self,
        process: Process,
        topology: Topology,
        detector: FailureDetector,
        namespace: str = "seqb",
    ) -> None:
        self.process = process
        self.topology = topology
        self.ns = namespace
        self.my_gid = topology.group_of(process.pid)
        self.catalog = MessageCatalog.of(process.sim)
        # One sequencer per group: its lowest pid.
        self.sequencers = [topology.members(g)[0] for g in topology.group_ids]
        self.my_sequencer = topology.members(self.my_gid)[0]
        self.i_am_sequencer = process.pid == self.my_sequencer

        self._majority = topology.n_processes // 2 + 1
        self._next_slot = 0  # sequencer-local emission index
        # Sequenced slots: (sequencer pid, slot index) -> mid or None.
        self._slots: Dict[Tuple[int, int], Optional[str]] = {}
        self._acks: Dict[str, Set[int]] = {}
        self._have_data: Set[str] = set()
        self._optimistic: List[str] = []
        self._cursor = (0, 0)  # (slot index, sequencer rank) merge cursor
        self._announced_noop: Set[int] = set()
        self._max_seen_index = -1  # largest slot index any sequencer emitted
        self._handler: Optional[DeliveryHandler] = None

        process.register_handler(f"{self.ns}.data", self._on_data)
        process.register_handler(f"{self.ns}.seq", self._on_seq)
        process.register_handler(f"{self.ns}.ack", self._on_ack)

    # ------------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        if self._handler is not None:
            raise ValueError("delivery handler already set")
        self._handler = handler

    @property
    def optimistic_deliveries(self) -> List[str]:
        """Message ids optimistically delivered (pre-validation)."""
        return list(self._optimistic)

    def a_bcast(self, msg: AppMessage) -> None:
        """Send m to everyone; the sequencer copy rides the same send."""
        self.catalog.intern(msg)
        self.process.send_many(
            self.topology.processes, f"{self.ns}.data",
            {"mid": msg.mid},
        )

    # ------------------------------------------------------------------
    def _on_data(self, netmsg: Message) -> None:
        msg = self.catalog.get(netmsg.payload["mid"])
        if msg.mid in self._have_data:
            return
        self._have_data.add(msg.mid)
        # Validation echo: O(n²) traffic, resolves at hop 2.
        self.process.send_many(self.topology.processes, f"{self.ns}.ack",
                               {"mid": msg.mid})
        # The caster's group's sequencer numbers the message.
        sender_gid = self.topology.group_of(msg.sender)
        if self.process.pid == self.topology.members(sender_gid)[0]:
            slot = self._next_slot
            self._next_slot += 1
            self.process.send_many(
                self.topology.processes, f"{self.ns}.seq",
                {"seq_pid": self.process.pid, "slot": slot,
                 "mid": msg.mid},
            )

    def _on_seq(self, netmsg: Message) -> None:
        key = (netmsg.payload["seq_pid"], netmsg.payload["slot"])
        self._slots.setdefault(key, netmsg.payload["mid"])
        if netmsg.payload["mid"] is not None:
            self._max_seen_index = max(self._max_seen_index,
                                       netmsg.payload["slot"])
        self._merge()

    def _on_ack(self, netmsg: Message) -> None:
        mid = netmsg.payload["mid"]
        self._acks.setdefault(mid, set()).add(netmsg.src)
        self._merge()

    # ------------------------------------------------------------------
    def _merge(self) -> None:
        """Deliver sequenced slots in deterministic merge order.

        Slots are consumed round-robin over sequencers by slot index.
        A sequencer that has emitted slot i for some i' > index being
        waited on would stall the merge; sequencers therefore announce
        no-op slots on demand (see module docstring).  In this
        single-slot-at-a-time regime the practical rule is simpler: a
        slot is deliverable when every *earlier* (index, rank) slot of
        every sequencer is either delivered or known-empty.
        """
        while True:
            index, rank = self._cursor
            key = (self.sequencers[rank], index)
            if key not in self._slots:
                # Demand-driven no-op: if any sequencer already emitted
                # this index or later, the missing sequencer announces
                # an empty slot.  Only the sequencer itself may do so.
                if self._should_emit_noop(key):
                    self._emit_noop(index)
                return
            mid = self._slots[key]
            if mid is not None:
                msg = self.catalog.get(mid)
                if msg.mid not in self._optimistic:
                    self._optimistic.append(msg.mid)
                if len(self._acks.get(msg.mid, ())) < self._majority:
                    return  # not yet validated by a majority
                if self._handler is None:
                    raise RuntimeError("no A-Deliver handler installed")
                self._handler(msg)
            del self._slots[key]
            rank += 1
            if rank == len(self.sequencers):
                rank = 0
                index += 1
            self._cursor = (index, rank)

    def _should_emit_noop(self, waiting_key: Tuple[int, int]) -> bool:
        seq_pid, index = waiting_key
        if seq_pid != self.process.pid:
            return False
        if index in self._announced_noop or index < self._next_slot:
            return False
        # Another sequencer has reached this index: fill our gap.
        return self._max_seen_index >= index

    def _emit_noop(self, index: int) -> None:
        self._announced_noop.add(index)
        self._next_slot = max(self._next_slot, index + 1)
        self.process.send_many(
            self.topology.processes, f"{self.ns}.seq",
            {"seq_pid": self.process.pid, "slot": index, "mid": None},
        )
