"""Packaging for the `repro` library.

Metadata lives here (plus setup.cfg) rather than pyproject.toml on
purpose: the offline environments this reproduction targets ship a
setuptools without the `wheel` package, and pip's pyproject-driven
editable install path (PEP 660) hard-requires bdist_wheel.  With plain
setup.py packaging, `pip install -e .` uses the classic
`setup.py develop` path and works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Schiper & Pedone, 'Optimal Atomic Broadcast "
        "and Multicast Algorithms for Wide Area Networks' (PODC 2007)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    keywords=[
        "atomic broadcast", "atomic multicast", "total order",
        "distributed systems", "consensus", "wide area networks",
    ],
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
